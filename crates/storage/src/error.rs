//! Storage error type.

/// Failure inside the storage substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Writing `requested` bytes would exceed the tier's remaining
    /// capacity.
    CapacityExceeded {
        tier: String,
        requested: u64,
        available: u64,
    },
    /// No object with this key exists anywhere in the hierarchy.
    NotFound(String),
    /// A tier index outside the hierarchy was addressed.
    NoSuchTier(usize),
    /// No tier had room for a product during placement.
    PlacementFailed(String),
    /// Writing an already-existing key without overwrite permission.
    AlreadyExists(String),
    /// A transient, retryable fault (injected by the tier's
    /// [`FaultPlan`](crate::FaultPlan), or any failure a retry may cure).
    Transient { tier: usize, key: String },
    /// The tier is inside a hard-down window of its
    /// [`FaultPlan`](crate::FaultPlan); retries within the window cannot
    /// succeed.
    TierDown { tier: usize },
}

impl StorageError {
    /// Faults a caller may reasonably retry or degrade around, as
    /// opposed to logic errors (missing keys, capacity, bad indices).
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            StorageError::Transient { .. } | StorageError::TierDown { .. }
        )
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::CapacityExceeded {
                tier,
                requested,
                available,
            } => write!(
                f,
                "tier {tier}: write of {requested} B exceeds remaining {available} B"
            ),
            StorageError::NotFound(k) => write!(f, "object {k:?} not found in any tier"),
            StorageError::NoSuchTier(i) => write!(f, "tier index {i} out of range"),
            StorageError::PlacementFailed(m) => write!(f, "placement failed: {m}"),
            StorageError::AlreadyExists(k) => write!(f, "object {k:?} already exists"),
            StorageError::Transient { tier, key } => {
                write!(f, "transient fault on tier {tier} accessing {key:?}")
            }
            StorageError::TierDown { tier } => write!(f, "tier {tier} is down"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = StorageError::CapacityExceeded {
            tier: "nvram".into(),
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("nvram") && s.contains("100") && s.contains("10"));
        assert!(StorageError::NotFound("x".into()).to_string().contains("x"));
        assert!(StorageError::NoSuchTier(3).to_string().contains('3'));
        let t = StorageError::Transient {
            tier: 2,
            key: "k".into(),
        };
        assert!(t.to_string().contains('2') && t.to_string().contains("k"));
        assert!(StorageError::TierDown { tier: 1 }.to_string().contains('1'));
    }

    #[test]
    fn fault_classification() {
        assert!(StorageError::Transient {
            tier: 0,
            key: "k".into()
        }
        .is_fault());
        assert!(StorageError::TierDown { tier: 0 }.is_fault());
        assert!(!StorageError::NotFound("k".into()).is_fault());
        assert!(!StorageError::NoSuchTier(9).is_fault());
    }
}
