//! Data placement across tiers (paper §III-D).
//!
//! Canopus places the (compressed) base dataset onto a fast tier and the
//! deltas onto larger but slower tiers; a tier without sufficient capacity
//! is bypassed and the next one is selected. Adjacent accuracy levels need
//! not land on adjacent physical tiers.

use crate::error::StorageError;
use crate::hierarchy::StorageHierarchy;
use crate::SimDuration;
use bytes::Bytes;

/// What a refactored product is, in Canopus terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProductKind {
    /// The base dataset `L^{N-1}` (paper notation), i.e. the coarsest
    /// level.
    Base { level: u32 },
    /// A delta `delta^{l-(l+1)}` between adjacent accuracy levels.
    Delta { finer: u32, coarser: u32 },
    /// One spatial chunk of a delta, enabling the paper's focused data
    /// retrieval ("reading smaller subsets of high accuracy data"):
    /// chunks covering a region of interest can be fetched without the
    /// rest of the delta.
    DeltaChunk {
        finer: u32,
        coarser: u32,
        chunk: u32,
    },
    /// A shard object packing several independently compressed Morton
    /// spatial chunks of one delta back-to-back; a chunk index in the
    /// manifest records each chunk's byte range so the read path can
    /// fetch only the chunks intersecting a region of interest.
    DeltaShard {
        finer: u32,
        coarser: u32,
        shard: u32,
    },
    /// Auxiliary metadata (mesh geometry, vertex→triangle mapping) that
    /// restoration needs alongside a delta or base.
    Metadata { level: u32 },
}

impl ProductKind {
    /// Placement rank: 0 for the base (fastest tier), increasing for
    /// deltas toward full accuracy (slower tiers). Metadata shares its
    /// level's rank.
    pub fn rank(&self, num_levels: u32) -> u32 {
        let cap = num_levels.saturating_sub(1);
        let level = match *self {
            ProductKind::Base { level } | ProductKind::Metadata { level } => level,
            ProductKind::Delta { finer, .. }
            | ProductKind::DeltaChunk { finer, .. }
            | ProductKind::DeltaShard { finer, .. } => finer,
        };
        cap - level.min(cap)
    }
}

/// One payload to place.
#[derive(Debug, Clone)]
pub struct Product {
    /// Storage key (unique within the hierarchy).
    pub key: String,
    pub kind: ProductKind,
    pub data: Bytes,
}

/// The outcome of placing a product set.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// `(product key, tier index)` in placement order.
    pub assignments: Vec<(String, usize)>,
    /// Total simulated write time.
    pub write_time: SimDuration,
}

impl PlacementPlan {
    /// Tier index assigned to `key`, if any.
    pub fn tier_of(&self, key: &str) -> Option<usize> {
        self.assignments
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, t)| t)
    }
}

/// Placement strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The paper's policy: product rank selects the starting tier
    /// (base → fastest, later deltas → slower), scanning downward past
    /// full tiers.
    #[default]
    RankSpread,
    /// Greedy: every product tries the fastest tier first. Used as an
    /// ablation baseline.
    FastestFirst,
}

impl PlacementPolicy {
    /// Place `products` (base first, then deltas coarse→fine) onto the
    /// hierarchy, writing the real bytes and advancing simulated time.
    ///
    /// `num_levels` is the total level count `N` used to compute ranks.
    pub fn place(
        &self,
        hierarchy: &StorageHierarchy,
        products: &[Product],
        num_levels: u32,
    ) -> Result<PlacementPlan, StorageError> {
        let mut assignments = Vec::with_capacity(products.len());
        let mut write_time = SimDuration::ZERO;

        for product in products {
            let tier = self.choose_tier(
                hierarchy,
                product.kind,
                product.data.len(),
                num_levels,
                &product.key,
                &|_| 0,
            )?;
            let dt = hierarchy.write_to_tier(tier, &product.key, product.data.clone())?;
            write_time += dt;
            assignments.push((product.key.clone(), tier));
        }
        Ok(PlacementPlan {
            assignments,
            write_time,
        })
    }

    /// One placement decision without the write: scan from the product's
    /// ideal tier toward slower tiers, bypassing any without room
    /// (paper: "it will be bypassed and the next tier will be
    /// selected"). `pending(tier)` is the bytes already decided for a
    /// tier but not yet landed (the write-behind ledger); the serial
    /// path passes zero, so a streaming caller that reserves decided
    /// bytes sees exactly the capacity state the serial path would and
    /// makes byte-identical decisions.
    pub fn choose_tier(
        &self,
        hierarchy: &StorageHierarchy,
        kind: ProductKind,
        len: usize,
        num_levels: u32,
        key: &str,
        pending: &dyn Fn(usize) -> u64,
    ) -> Result<usize, StorageError> {
        let ntiers = hierarchy.num_tiers();
        let start = match self {
            PlacementPolicy::RankSpread => (kind.rank(num_levels) as usize).min(ntiers - 1),
            PlacementPolicy::FastestFirst => 0,
        };
        for tier in start..ntiers {
            let device = hierarchy.tier_device(tier)?;
            let free = device.available().saturating_sub(pending(tier));
            if (free as usize) < len {
                continue;
            }
            let obs = hierarchy.metrics();
            obs.counter(&canopus_obs::names::placements_on_tier(tier))
                .inc();
            obs.counter(&canopus_obs::names::placement_bytes_on_tier(tier))
                .add(len as u64);
            if tier != start {
                obs.counter("storage.placement.bypasses").inc();
            }
            return Ok(tier);
        }
        Err(StorageError::PlacementFailed(format!(
            "no tier from {start} down has room for {key} ({len} B)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierSpec;

    fn product(key: &str, kind: ProductKind, size: usize) -> Product {
        Product {
            key: key.into(),
            kind,
            data: Bytes::from(vec![0u8; size]),
        }
    }

    /// Base + two deltas for a 3-level refactoring, paper Fig. 1 shapes.
    fn three_products() -> Vec<Product> {
        vec![
            product("v/L2", ProductKind::Base { level: 2 }, 25),
            product(
                "v/d1-2",
                ProductKind::Delta {
                    finer: 1,
                    coarser: 2,
                },
                25,
            ),
            product(
                "v/d0-1",
                ProductKind::Delta {
                    finer: 0,
                    coarser: 1,
                },
                50,
            ),
        ]
    }

    #[test]
    fn rank_ordering() {
        // N = 3 levels: base L2 rank 0, delta(1-2) rank 1, delta(0-1) rank 2.
        assert_eq!(ProductKind::Base { level: 2 }.rank(3), 0);
        assert_eq!(
            ProductKind::Delta {
                finer: 1,
                coarser: 2
            }
            .rank(3),
            1
        );
        assert_eq!(
            ProductKind::Delta {
                finer: 0,
                coarser: 1
            }
            .rank(3),
            2
        );
        assert_eq!(ProductKind::Metadata { level: 2 }.rank(3), 0);
        // Chunks rank with their parent delta.
        assert_eq!(
            ProductKind::DeltaChunk {
                finer: 0,
                coarser: 1,
                chunk: 5
            }
            .rank(3),
            2
        );
    }

    #[test]
    fn rank_survives_degenerate_level_counts() {
        // num_levels == 0 used to underflow (debug panic / release wrap);
        // every kind must now clamp to rank 0.
        for kind in [
            ProductKind::Base { level: 0 },
            ProductKind::Base { level: 7 },
            ProductKind::Metadata { level: 3 },
            ProductKind::Delta {
                finer: 2,
                coarser: 3,
            },
            ProductKind::DeltaChunk {
                finer: 1,
                coarser: 2,
                chunk: 9,
            },
            ProductKind::DeltaShard {
                finer: 0,
                coarser: 1,
                shard: 4,
            },
        ] {
            assert_eq!(kind.rank(0), 0, "{kind:?} must not underflow at N=0");
            assert_eq!(kind.rank(1), 0, "{kind:?} single-level rank is 0");
        }
        // Levels beyond the count clamp instead of wrapping.
        assert_eq!(ProductKind::Base { level: 9 }.rank(3), 0);
    }

    #[test]
    fn spread_maps_products_to_tiers_like_fig1() {
        // Three tiers with plenty of room: base→ST0(fastest),
        // delta(1-2)→ST1, delta(0-1)→ST2 — exactly the paper's Fig. 1.
        let h = StorageHierarchy::new(vec![
            TierSpec::new("st2-fast", 1000, 100.0, 100.0, 0.0),
            TierSpec::new("st1", 1000, 10.0, 10.0, 0.0),
            TierSpec::new("st0-slow", 1000, 1.0, 1.0, 0.0),
        ]);
        let plan = PlacementPolicy::RankSpread
            .place(&h, &three_products(), 3)
            .unwrap();
        assert_eq!(plan.tier_of("v/L2"), Some(0));
        assert_eq!(plan.tier_of("v/d1-2"), Some(1));
        assert_eq!(plan.tier_of("v/d0-1"), Some(2));
    }

    #[test]
    fn two_tier_titan_collapses_deltas_to_lustre() {
        // The paper's testbed: base on tmpfs, both deltas on Lustre.
        let h = StorageHierarchy::new(vec![
            TierSpec::new("tmpfs", 1000, 100.0, 100.0, 0.0),
            TierSpec::new("lustre", 10_000, 1.0, 1.0, 0.0),
        ]);
        let plan = PlacementPolicy::RankSpread
            .place(&h, &three_products(), 3)
            .unwrap();
        assert_eq!(plan.tier_of("v/L2"), Some(0));
        assert_eq!(plan.tier_of("v/d1-2"), Some(1));
        assert_eq!(plan.tier_of("v/d0-1"), Some(1));
    }

    #[test]
    fn full_tier_is_bypassed() {
        // Fast tier too small for the base: base must land on tier 1.
        let h = StorageHierarchy::new(vec![
            TierSpec::new("tiny", 10, 100.0, 100.0, 0.0),
            TierSpec::new("big", 10_000, 1.0, 1.0, 0.0),
        ]);
        let plan = PlacementPolicy::RankSpread
            .place(&h, &three_products(), 3)
            .unwrap();
        assert_eq!(plan.tier_of("v/L2"), Some(1));
    }

    #[test]
    fn placement_fails_when_nothing_fits() {
        let h = StorageHierarchy::new(vec![TierSpec::new("tiny", 10, 1.0, 1.0, 0.0)]);
        let err = PlacementPolicy::RankSpread
            .place(&h, &three_products(), 3)
            .unwrap_err();
        assert!(matches!(err, StorageError::PlacementFailed(_)));
    }

    #[test]
    fn fastest_first_piles_onto_tier_zero() {
        let h = StorageHierarchy::new(vec![
            TierSpec::new("fast", 1000, 100.0, 100.0, 0.0),
            TierSpec::new("slow", 1000, 1.0, 1.0, 0.0),
        ]);
        let plan = PlacementPolicy::FastestFirst
            .place(&h, &three_products(), 3)
            .unwrap();
        for (_, tier) in &plan.assignments {
            assert_eq!(*tier, 0);
        }
    }

    #[test]
    fn write_time_accumulates_across_products() {
        let h = StorageHierarchy::new(vec![
            TierSpec::new("fast", 1000, 100.0, 100.0, 0.0),
            TierSpec::new("slow", 1000, 10.0, 10.0, 0.0),
        ]);
        let plan = PlacementPolicy::RankSpread
            .place(&h, &three_products(), 3)
            .unwrap();
        // 25/100 + 25/10 + 50/10 = 0.25 + 2.5 + 5.0
        assert!((plan.write_time.seconds() - 7.75).abs() < 1e-9);
    }

    #[test]
    fn choose_tier_respects_pending_reservations() {
        // Tier 0 holds 30 B free; a 25 B reservation in flight must push
        // the next 25 B product to tier 1 — the decision the serial path
        // would make after the reserved block landed.
        let h = StorageHierarchy::new(vec![
            TierSpec::new("fast", 30, 100.0, 100.0, 0.0),
            TierSpec::new("slow", 1000, 1.0, 1.0, 0.0),
        ]);
        let base = ProductKind::Base { level: 2 };
        let free = PlacementPolicy::RankSpread
            .choose_tier(&h, base, 25, 3, "v/L2", &|_| 0)
            .unwrap();
        assert_eq!(free, 0);
        let reserved = PlacementPolicy::RankSpread
            .choose_tier(&h, base, 25, 3, "v/L2", &|t| if t == 0 { 25 } else { 0 })
            .unwrap();
        assert_eq!(reserved, 1, "pending bytes count against capacity");
        let err = PlacementPolicy::RankSpread
            .choose_tier(&h, base, 25, 3, "v/L2", &|_| 10_000)
            .unwrap_err();
        assert!(matches!(err, StorageError::PlacementFailed(_)));
    }

    #[test]
    fn placed_bytes_are_readable() {
        let h = StorageHierarchy::new(vec![
            TierSpec::new("fast", 1000, 100.0, 100.0, 0.0),
            TierSpec::new("slow", 1000, 10.0, 10.0, 0.0),
        ]);
        PlacementPolicy::RankSpread
            .place(&h, &three_products(), 3)
            .unwrap();
        for key in ["v/L2", "v/d1-2", "v/d0-1"] {
            let (data, _, _) = h.read(key).unwrap();
            assert!(!data.is_empty());
        }
    }
}
