//! # canopus-storage
//!
//! Multi-tier HPC storage hierarchy substrate for the Canopus reproduction.
//!
//! The paper evaluates Canopus on a two-tier hierarchy (DRAM-backed tmpfs +
//! the Lustre parallel file system on Titan) and motivates deeper
//! hierarchies (HBM, NVRAM, SSD/burst buffer, PFS, campaign storage) on
//! Summit/Aurora-class machines. We do not have Titan; what the paper's
//! Figs. 6b and 9–11 actually depend on is the *relative* performance of
//! the tiers, so this crate provides:
//!
//! * [`tier::TierSpec`] — capacity / bandwidth / latency description of one
//!   tier, with presets calibrated to published numbers for tmpfs, NVRAM,
//!   burst-buffer SSDs, Lustre and campaign storage;
//! * [`device::Device`] — a real key→bytes store backing each tier
//!   (in-memory, thread-safe) with strict capacity enforcement, so every
//!   byte Canopus "places" is actually stored and read back bit-exactly;
//! * [`clock::SimClock`] — a deterministic simulated clock that integrates
//!   modeled transfer times (`latency + bytes/bandwidth`), giving
//!   reproducible I/O timings on any host;
//! * [`hierarchy::StorageHierarchy`] — the ordered tier stack with
//!   fastest-first reads and per-tier accounting;
//! * [`placement`] — the paper's placement policy (§III-D): fastest tier
//!   first, bypass tiers with insufficient remaining capacity;
//! * [`fault::FaultPlan`] — deterministic, seedable fault injection per
//!   tier (transient errors, payload corruption, added latency, hard
//!   tier-down windows) so the layers above can be tested for graceful,
//!   accuracy-degrading recovery instead of hard failure.

pub mod clock;
pub mod device;
pub mod error;
pub mod fault;
pub mod hierarchy;
pub mod migration;
pub mod placement;
pub mod tier;
pub mod writeback;

pub use clock::{SimClock, SimDuration};
pub use device::Device;
pub use error::StorageError;
pub use fault::{FaultOp, FaultPlan};
pub use hierarchy::{StorageHierarchy, TierStats};
pub use migration::{AccessTracker, HeatEntry, RoomOutcome, DEFAULT_HEAT_DECAY};
pub use placement::{PlacementPlan, Product, ProductKind};
pub use tier::TierSpec;
pub use writeback::WriteBehind;
