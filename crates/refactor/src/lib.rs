//! # canopus-refactor
//!
//! The paper's core refactoring machinery: mesh decimation (Alg. 1), delta
//! calculation (Alg. 2, Eqs. 1–3) and data restoration (Alg. 3).
//!
//! Canopus turns a full-accuracy field `L^0` over a mesh `G^0` into a
//! progression of levels `L^0 .. L^{N-1}` by repeatedly collapsing the
//! shortest edge (halving the vertex count per level), then stores only
//! the coarsest level plus per-level deltas
//! `delta^{l-(l+1)} = L^l - Estimate(L^{l+1})`, where `Estimate` predicts
//! each fine vertex from the corners of its containing coarse triangle.
//! Restoration replays the estimates and adds the deltas back; with exact
//! (uncompressed) deltas it reproduces `L^0` bit-for-bit.
//!
//! Modules:
//! * [`pqueue`] — the edge priority queue (shortest first, lazy deletion);
//! * [`decimate`] — edge-collapse decimation with link-condition and
//!   orientation guards so every level stays a manifold triangulation;
//! * [`mapping`] — fine-vertex → coarse-triangle mapping (stored into BP
//!   metadata at refactor time, exactly as §III-E2 prescribes);
//! * [`estimate`] — the `Estimate(·)` function (paper default: equal
//!   weights 1/3) plus a barycentric variant for the ablation study;
//! * [`delta`] — delta calculation and restoration;
//! * [`levels`] — driving the whole hierarchy build and progressive
//!   restoration;
//! * [`bytesplit`] / [`blocksplit`] — the two alternative refactoring
//!   approaches §III-C names next to mesh decimation, implemented for the
//!   refactorer-comparison ablation.

pub mod blocksplit;
pub mod bytesplit;
pub mod decimate;
pub mod delta;
pub mod estimate;
pub mod levels;
pub mod mapping;
pub mod parallel;
pub mod pqueue;

pub use decimate::{decimate, DecimationResult};
pub use delta::{compute_delta, restore_level};
pub use estimate::Estimator;
pub use levels::{LevelHierarchy, RefactorConfig};
pub use mapping::build_mapping;
pub use parallel::{decimate_parallel, decimate_parallel_morton};
