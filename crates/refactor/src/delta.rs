//! Delta calculation (paper Alg. 2, Eq. 1) and restoration (Alg. 3).
//!
//! `delta_x^{l-(l+1)} = L_x^l - Estimate(L_i^{l+1}, L_j^{l+1}, L_k^{l+1})`
//! for the coarse triangle `<i, j, k>` containing `x`, and restoration is
//! the exact inverse. Both sides evaluate the identical f64 estimate, so
//! restoration with uncompressed deltas reproduces the fine level to
//! within one floating-point rounding of the estimate (`(a-b)+b` is not
//! always bit-identical to `a`); with compressed deltas the pointwise
//! error adds the codec's bound.

use crate::estimate::Estimator;
use crate::mapping::Mapping;
use canopus_mesh::TriMesh;
use rayon::prelude::*;

/// Compute `delta^{l-(l+1)}` for all fine vertices.
///
/// # Panics
/// Panics on length mismatches between mesh, data and mapping.
pub fn compute_delta(
    fine_mesh: &TriMesh,
    fine_data: &[f64],
    coarse_mesh: &TriMesh,
    coarse_data: &[f64],
    mapping: &Mapping,
    estimator: Estimator,
) -> Vec<f64> {
    assert_eq!(fine_data.len(), fine_mesh.num_vertices());
    assert_eq!(coarse_data.len(), coarse_mesh.num_vertices());
    assert_eq!(mapping.len(), fine_mesh.num_vertices());

    (0..fine_data.len())
        .into_par_iter()
        .map(|x| {
            let est = estimator.estimate(fine_mesh, x as u32, coarse_mesh, coarse_data, mapping[x]);
            fine_data[x] - est
        })
        .collect()
}

/// Restore `L^l` from the coarse level and the delta (paper Alg. 3):
/// `L_x^l = delta_x + Estimate(...)`.
pub fn restore_level(
    fine_mesh: &TriMesh,
    delta: &[f64],
    coarse_mesh: &TriMesh,
    coarse_data: &[f64],
    mapping: &Mapping,
    estimator: Estimator,
) -> Vec<f64> {
    assert_eq!(delta.len(), fine_mesh.num_vertices());
    assert_eq!(coarse_data.len(), coarse_mesh.num_vertices());
    assert_eq!(mapping.len(), fine_mesh.num_vertices());

    (0..delta.len())
        .into_par_iter()
        .map(|x| {
            let est = estimator.estimate(fine_mesh, x as u32, coarse_mesh, coarse_data, mapping[x]);
            delta[x] + est
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decimate::decimate;
    use crate::mapping::build_mapping;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_mesh::FieldStats;

    fn setup() -> (TriMesh, Vec<f64>, TriMesh, Vec<f64>, Mapping) {
        let fine = jitter_interior(
            &rectangle_mesh(
                14,
                14,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            5,
        );
        let data: Vec<f64> = fine
            .points()
            .iter()
            .map(|p| (p.x * 6.0).sin() * (p.y * 5.0).cos() + 0.3 * p.x)
            .collect();
        let dec = decimate(&fine, &data, 2.0);
        let mapping = build_mapping(&fine, &dec.mesh);
        (fine, data, dec.mesh, dec.data, mapping)
    }

    #[test]
    fn delta_then_restore_inverts_to_rounding() {
        for estimator in [Estimator::Mean, Estimator::Barycentric] {
            let (fine, data, coarse, cdata, mapping) = setup();
            let delta = compute_delta(&fine, &data, &coarse, &cdata, &mapping, estimator);
            let restored = restore_level(&fine, &delta, &coarse, &cdata, &mapping, estimator);
            let max_err = restored
                .iter()
                .zip(&data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_err < 1e-14,
                "estimator {estimator:?}: restoration error {max_err} beyond rounding"
            );
        }
    }

    #[test]
    fn deltas_are_smaller_and_smoother_than_the_field() {
        // The paper's Fig. 4 observation: deltas are less variable than
        // the levels themselves — the pre-conditioner effect.
        let (fine, data, coarse, cdata, mapping) = setup();
        let delta = compute_delta(&fine, &data, &coarse, &cdata, &mapping, Estimator::Mean);
        let field_stats = FieldStats::of(&data);
        let delta_stats = FieldStats::of(&delta);
        assert!(
            delta_stats.std_dev() < field_stats.std_dev(),
            "delta std {} should be below field std {}",
            delta_stats.std_dev(),
            field_stats.std_dev()
        );
    }

    #[test]
    fn barycentric_deltas_beat_mean_deltas_on_smooth_fields() {
        let (fine, data, coarse, cdata, mapping) = setup();
        let d_mean = compute_delta(&fine, &data, &coarse, &cdata, &mapping, Estimator::Mean);
        let d_bary = compute_delta(
            &fine,
            &data,
            &coarse,
            &cdata,
            &mapping,
            Estimator::Barycentric,
        );
        let s_mean = FieldStats::of(&d_mean).std_dev();
        let s_bary = FieldStats::of(&d_bary).std_dev();
        assert!(
            s_bary < s_mean,
            "barycentric deltas ({s_bary}) should be tighter than mean deltas ({s_mean})"
        );
    }

    #[test]
    fn perturbed_coarse_data_perturbs_restoration_boundedly() {
        // Lossy compression of the coarse level shifts the restored fine
        // level by at most the same bound (Estimate is an affine map with
        // weights summing to 1).
        let (fine, data, coarse, cdata, mapping) = setup();
        let delta = compute_delta(&fine, &data, &coarse, &cdata, &mapping, Estimator::Mean);
        let eps = 1e-5;
        let perturbed: Vec<f64> = cdata.iter().map(|v| v + eps).collect();
        let restored = restore_level(
            &fine,
            &delta,
            &coarse,
            &perturbed,
            &mapping,
            Estimator::Mean,
        );
        for (r, d) in restored.iter().zip(&data) {
            assert!((r - d).abs() <= eps * 1.000001);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_mapping_length() {
        let (fine, data, coarse, cdata, _) = setup();
        let bad_mapping = vec![0u32; 3];
        compute_delta(&fine, &data, &coarse, &cdata, &bad_mapping, Estimator::Mean);
    }
}
