//! Partition-parallel decimation.
//!
//! The paper stresses that "the decimation is done locally without
//! requiring communication with other processors, and therefore is
//! embarrassingly parallel." This module realizes that on a single node:
//! the mesh is split into spatial partitions, each partition is decimated
//! concurrently (rayon) with its *shared* vertices frozen, and the
//! results are stitched back into one mesh — shared vertices keep their
//! identity, so the union is watertight.
//!
//! Frozen boundary bands cannot collapse (the surface-to-volume overhead
//! a real distributed decimation pays), while per-partition targets are
//! computed on duplicated vertex counts and push slightly harder — so the
//! achieved ratio lands in a narrow band around the target rather than
//! exactly on it. The tests pin that trade-off.

use crate::decimate::{decimate_frozen, DecimationResult};
use canopus_mesh::partition::{morton_partition, strip_partition, Partition};
use canopus_mesh::{TriMesh, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;

/// Decimate `mesh` by `ratio` using `num_parts` parallel strip
/// partitions.
///
/// # Panics
/// Panics if `ratio < 1`, `num_parts == 0`, or data/mesh disagree.
pub fn decimate_parallel(
    mesh: &TriMesh,
    data: &[f64],
    ratio: f64,
    num_parts: usize,
) -> DecimationResult {
    assert!(ratio >= 1.0, "decimation ratio must be >= 1");
    assert!(num_parts >= 1, "need at least one partition");
    assert_eq!(data.len(), mesh.num_vertices());
    if num_parts == 1 {
        return crate::decimate::decimate(mesh, data, ratio);
    }
    decimate_partitioned(mesh, data, ratio, strip_partition(mesh, num_parts))
}

/// [`decimate_parallel`] over Morton (Z-order) partitions instead of
/// strips: spatially compact blocks keep the frozen boundary bands short,
/// so more of each region stays collapsible at high partition counts.
/// This is the kernel the write pipeline uses when
/// `decimation_parts > 1`. Output depends only on the mesh, the data and
/// `num_parts` — never on how many threads actually ran — because the
/// partitioning is geometric and the stitch walks partitions in order
/// with a deterministic first-wins tie-break on shared vertices.
///
/// # Panics
/// Panics if `ratio < 1`, `num_parts == 0`, or data/mesh disagree.
pub fn decimate_parallel_morton(
    mesh: &TriMesh,
    data: &[f64],
    ratio: f64,
    num_parts: usize,
) -> DecimationResult {
    assert!(ratio >= 1.0, "decimation ratio must be >= 1");
    assert!(num_parts >= 1, "need at least one partition");
    assert_eq!(data.len(), mesh.num_vertices());
    if num_parts == 1 {
        return crate::decimate::decimate(mesh, data, ratio);
    }
    decimate_partitioned(mesh, data, ratio, morton_partition(mesh, num_parts))
}

/// Region-local decimation + deterministic stitch over prebuilt
/// partitions (the shared core of the strip and Morton front ends).
fn decimate_partitioned(
    mesh: &TriMesh,
    data: &[f64],
    ratio: f64,
    parts: Vec<Partition>,
) -> DecimationResult {
    // A parent vertex is *shared* iff it appears in more than one
    // partition; shared vertices are frozen everywhere.
    let mut occurrences = vec![0u8; mesh.num_vertices()];
    for p in &parts {
        for &g in &p.to_parent {
            occurrences[g as usize] = occurrences[g as usize].saturating_add(1);
        }
    }
    let shared: Vec<bool> = occurrences.iter().map(|&c| c > 1).collect();

    // Decimate every partition concurrently.
    let results: Vec<(Partition, DecimationResult)> = parts
        .into_par_iter()
        .map(|p| {
            let local_data = p.gather(data);
            let frozen: Vec<bool> = p.to_parent.iter().map(|&g| shared[g as usize]).collect();
            let r = decimate_frozen(&p.mesh, &local_data, ratio, &frozen);
            (p, r)
        })
        .collect();

    // --- stitch ---
    let mut points = Vec::new();
    let mut out_data = Vec::new();
    let mut original_index = Vec::new();
    let mut tris = Vec::new();
    // parent shared vertex -> stitched global id
    let mut shared_map: HashMap<VertexId, u32> = HashMap::new();
    let mut collapses = 0usize;
    let mut rejected = 0usize;

    for (part, r) in &results {
        collapses += r.collapses;
        rejected += r.rejected;
        let mut local_to_global = vec![u32::MAX; r.mesh.num_vertices()];
        for (local, &orig) in r.original_index.iter().enumerate() {
            let parent = orig.map(|o| part.to_parent[o as usize]);
            let global = match parent {
                Some(pv) if shared[pv as usize] => *shared_map.entry(pv).or_insert_with(|| {
                    let id = points.len() as u32;
                    points.push(r.mesh.point(local as u32));
                    out_data.push(r.data[local]);
                    original_index.push(Some(pv));
                    id
                }),
                _ => {
                    let id = points.len() as u32;
                    points.push(r.mesh.point(local as u32));
                    out_data.push(r.data[local]);
                    original_index.push(parent);
                    id
                }
            };
            local_to_global[local] = global;
        }
        for t in r.mesh.triangles() {
            tris.push([
                local_to_global[t[0] as usize],
                local_to_global[t[1] as usize],
                local_to_global[t[2] as usize],
            ]);
        }
    }

    let out_mesh = TriMesh::new(points, tris);
    DecimationResult {
        achieved_ratio: mesh.num_vertices() as f64 / out_mesh.num_vertices().max(1) as f64,
        mesh: out_mesh,
        data: out_data,
        collapses,
        rejected,
        original_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_mesh::quality;

    fn grid(n: usize) -> (TriMesh, Vec<f64>) {
        let mesh = jitter_interior(
            &rectangle_mesh(
                n,
                n,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            13,
        );
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 6.0).sin() + (p.y * 4.0).cos())
            .collect();
        (mesh, data)
    }

    #[test]
    fn parallel_result_is_a_valid_mesh() {
        let (mesh, data) = grid(24);
        for parts in [2, 4, 8] {
            let r = decimate_parallel(&mesh, &data, 2.0, parts);
            let rep = quality::check(&r.mesh);
            assert!(rep.is_manifold, "{parts} parts: {rep:?}");
            assert_eq!(rep.inverted_triangles, 0, "{parts} parts folded");
            assert_eq!(r.mesh.num_vertices(), r.data.len());
        }
    }

    #[test]
    fn stitching_preserves_total_area() {
        let (mesh, data) = grid(20);
        let r = decimate_parallel(&mesh, &data, 2.0, 4);
        // Interior collapses move area slightly; the stitched cover must
        // stay close to the original domain.
        let ratio = r.mesh.total_area() / mesh.total_area();
        assert!((0.95..=1.0001).contains(&ratio), "area ratio {ratio}");
    }

    #[test]
    fn achieved_ratio_stays_near_target() {
        // Frozen boundary bands block some collapses while per-partition
        // targets (computed on duplicated vertex counts) push a little
        // harder; the net ratio must stay in a tight band around 2x.
        let (mesh, data) = grid(32);
        let serial = crate::decimate::decimate(&mesh, &data, 2.0);
        assert!((serial.achieved_ratio - 2.0).abs() < 0.1);
        for parts in [2, 4, 8] {
            let parallel = decimate_parallel(&mesh, &data, 2.0, parts);
            assert!(
                (1.5..=2.6).contains(&parallel.achieved_ratio),
                "{parts} parts: ratio {}",
                parallel.achieved_ratio
            );
        }
    }

    #[test]
    fn one_partition_matches_serial() {
        let (mesh, data) = grid(12);
        let a = crate::decimate::decimate(&mesh, &data, 2.0);
        let b = decimate_parallel(&mesh, &data, 2.0, 1);
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn shared_vertices_survive_with_identity() {
        let (mesh, data) = grid(16);
        let parts = strip_partition(&mesh, 4);
        let mut occurrences = vec![0u8; mesh.num_vertices()];
        for p in &parts {
            for &g in &p.to_parent {
                occurrences[g as usize] += 1;
            }
        }
        let r = decimate_parallel(&mesh, &data, 2.0, 4);
        // Every shared parent vertex appears in the output exactly once,
        // with its original position and data.
        for (pv, &c) in occurrences.iter().enumerate() {
            if c > 1 {
                let hits: Vec<usize> = r
                    .original_index
                    .iter()
                    .enumerate()
                    .filter(|(_, &o)| o == Some(pv as u32))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(hits.len(), 1, "shared vertex {pv} stitched once");
                let out = hits[0];
                assert_eq!(r.mesh.point(out as u32), mesh.point(pv as u32));
                assert_eq!(r.data[out], data[pv]);
            }
        }
    }

    #[test]
    fn parallel_decimation_is_deterministic() {
        let (mesh, data) = grid(16);
        let a = decimate_parallel(&mesh, &data, 2.0, 4);
        let b = decimate_parallel(&mesh, &data, 2.0, 4);
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn morton_kernel_is_valid_and_deterministic() {
        let (mesh, data) = grid(24);
        for parts in [2, 4, 8] {
            let r = decimate_parallel_morton(&mesh, &data, 2.0, parts);
            let rep = quality::check(&r.mesh);
            assert!(rep.is_manifold, "{parts} parts: {rep:?}");
            assert_eq!(rep.inverted_triangles, 0, "{parts} parts folded");
            assert_eq!(r.mesh.num_vertices(), r.data.len());
            assert!(
                (1.5..=2.6).contains(&r.achieved_ratio),
                "{parts} parts: ratio {}",
                r.achieved_ratio
            );
            let again = decimate_parallel_morton(&mesh, &data, 2.0, parts);
            assert_eq!(r.mesh, again.mesh, "{parts} parts");
            assert_eq!(r.data, again.data, "{parts} parts");
        }
    }

    #[test]
    fn morton_kernel_one_partition_matches_serial() {
        let (mesh, data) = grid(12);
        let a = crate::decimate::decimate(&mesh, &data, 2.0);
        let b = decimate_parallel_morton(&mesh, &data, 2.0, 1);
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.data, b.data);
    }
}
