//! Edge priority queue for decimation.
//!
//! Paper Alg. 1 pops the shortest edge first. Edges never change length
//! once created (a collapse deletes edges and creates new ones; it never
//! moves surviving endpoints), so a lazy-deletion binary heap is exact:
//! stale entries are skipped at pop time by checking membership in the
//! live-edge set.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// An undirected edge as an ordered vertex pair.
pub type Edge = (u32, u32);

/// Normalize to `(lo, hi)`.
#[inline]
pub fn edge(u: u32, v: u32) -> Edge {
    (u.min(v), u.max(v))
}

/// f64 wrapper with a total order (panics on NaN at construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Len(f64);

impl Len {
    fn new(x: f64) -> Self {
        assert!(!x.is_nan(), "edge length cannot be NaN");
        Len(x)
    }
}

impl Eq for Len {}

impl PartialOrd for Len {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Len {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("no NaN by construction")
    }
}

/// Min-heap of edges keyed by length, with lazy deletion.
#[derive(Debug, Default)]
pub struct EdgeQueue {
    heap: BinaryHeap<Reverse<(Len, Edge)>>,
    live: HashSet<Edge>,
}

impl EdgeQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            live: HashSet::with_capacity(n),
        }
    }

    /// Number of live edges.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    pub fn contains(&self, e: Edge) -> bool {
        self.live.contains(&e)
    }

    /// Insert an edge with its length. Re-inserting a live edge is a
    /// no-op (the first length wins — lengths are immutable anyway).
    pub fn push(&mut self, e: Edge, length: f64) {
        debug_assert!(e.0 < e.1, "edges must be normalized");
        if self.live.insert(e) {
            self.heap.push(Reverse((Len::new(length), e)));
        }
    }

    /// Mark an edge dead (lazy: the heap entry is skipped later).
    pub fn remove(&mut self, e: Edge) {
        self.live.remove(&e);
    }

    /// Pop the shortest live edge, or `None` when exhausted.
    pub fn pop(&mut self) -> Option<(Edge, f64)> {
        while let Some(Reverse((len, e))) = self.heap.pop() {
            if self.live.remove(&e) {
                return Some((e, len.0));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_length_order() {
        let mut q = EdgeQueue::new();
        q.push(edge(0, 1), 3.0);
        q.push(edge(1, 2), 1.0);
        q.push(edge(2, 3), 2.0);
        assert_eq!(q.pop().unwrap().0, (1, 2));
        assert_eq!(q.pop().unwrap().0, (2, 3));
        assert_eq!(q.pop().unwrap().0, (0, 1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn lazy_deletion_skips_removed_edges() {
        let mut q = EdgeQueue::new();
        q.push(edge(0, 1), 1.0);
        q.push(edge(1, 2), 2.0);
        q.remove(edge(0, 1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().0, (1, 2));
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_push_is_noop() {
        let mut q = EdgeQueue::new();
        q.push(edge(0, 1), 1.0);
        q.push(edge(1, 0), 5.0); // same edge, normalized
        assert_eq!(q.len(), 1);
        let (e, len) = q.pop().unwrap();
        assert_eq!(e, (0, 1));
        assert_eq!(len, 1.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn normalization() {
        assert_eq!(edge(5, 2), (2, 5));
        assert_eq!(edge(2, 5), (2, 5));
    }

    #[test]
    fn ties_break_deterministically() {
        let mut q1 = EdgeQueue::new();
        let mut q2 = EdgeQueue::new();
        for (a, b) in [(3, 4), (1, 2), (0, 1), (2, 3)] {
            q1.push(edge(a, b), 1.0);
            q2.push(edge(a, b), 1.0);
        }
        let order1: Vec<Edge> = std::iter::from_fn(|| q1.pop().map(|(e, _)| e)).collect();
        let order2: Vec<Edge> = std::iter::from_fn(|| q2.pop().map(|(e, _)| e)).collect();
        assert_eq!(order1, order2, "equal lengths must pop deterministically");
        assert_eq!(order1[0], (0, 1), "ties break on vertex ids");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_length() {
        EdgeQueue::new().push(edge(0, 1), f64::NAN);
    }

    #[test]
    fn reinsert_after_pop_allowed() {
        let mut q = EdgeQueue::new();
        q.push(edge(0, 1), 1.0);
        q.pop().unwrap();
        q.push(edge(0, 1), 2.0);
        assert_eq!(q.pop().unwrap(), ((0, 1), 2.0));
    }
}
