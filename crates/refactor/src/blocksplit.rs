//! Block-splitting refactorer.
//!
//! The second alternative the paper names (§III-C, after JPEG 2000's
//! code-block structure [8]): partition the value stream into fixed-size
//! blocks and build a mean pyramid — the base holds per-block means over
//! wide blocks, each delta refines block means one halving at a time, and
//! the final delta restores exact values. Unlike mesh decimation the
//! blocks ignore mesh geometry entirely, which is why the paper rejects
//! it for mesh data: a reconstructed level is *not* "complete in geometry"
//! and cannot be consumed by mesh analytics directly. The ablation bench
//! quantifies the compression side of that argument.

/// A block-split hierarchy over a 1-D value stream.
#[derive(Debug, Clone)]
pub struct BlockHierarchy {
    /// `means[k]` = per-block means with block size `base_block >> k`
    /// (coarsest first). `means[0]` is the base product.
    levels: Vec<Vec<f64>>,
    /// Deltas: `deltas[k][i] = means[k+1][i] - means[k][i / 2]`, plus the
    /// final level refining into exact values.
    deltas: Vec<Vec<f64>>,
    n: usize,
    base_block: usize,
}

impl BlockHierarchy {
    /// Build with `num_levels >= 1` products; the base block size is
    /// `2^(num_levels - 1)`.
    ///
    /// # Panics
    /// Panics when `num_levels` is 0.
    pub fn build(data: &[f64], num_levels: u32) -> Self {
        assert!(num_levels >= 1, "need at least one level");
        let base_block = 1usize << (num_levels - 1);
        // Level k has block size base_block >> k; level num_levels-1 is
        // the exact data.
        let mut levels = Vec::with_capacity(num_levels as usize);
        for k in 0..num_levels {
            let bs = base_block >> k;
            levels.push(block_means(data, bs));
        }
        let mut deltas = Vec::with_capacity(num_levels as usize - 1);
        for k in 0..num_levels as usize - 1 {
            let coarse = &levels[k];
            let fine = &levels[k + 1];
            let delta: Vec<f64> = fine
                .iter()
                .enumerate()
                .map(|(i, &v)| v - coarse[i / 2])
                .collect();
            deltas.push(delta);
        }
        Self {
            levels,
            deltas,
            n: data.len(),
            base_block,
        }
    }

    pub fn num_levels(&self) -> u32 {
        self.levels.len() as u32
    }

    /// The base product (coarsest block means).
    pub fn base(&self) -> &[f64] {
        &self.levels[0]
    }

    /// Delta refining pyramid level `k` into `k+1`.
    pub fn delta(&self, k: usize) -> &[f64] {
        &self.deltas[k]
    }

    /// Raw bytes of all stored products (base + deltas).
    pub fn refactored_raw_bytes(&self) -> usize {
        (self.base().len() + self.deltas.iter().map(Vec::len).sum::<usize>()) * 8
    }

    /// Reconstruct the stream using the base plus the first `available`
    /// deltas; unrefined blocks replicate their mean.
    pub fn reconstruct(&self, available_deltas: usize) -> Vec<f64> {
        assert!(available_deltas <= self.deltas.len());
        let mut current = self.levels[0].clone();
        for delta in &self.deltas[..available_deltas] {
            let mut next = Vec::with_capacity(delta.len());
            for (i, &d) in delta.iter().enumerate() {
                next.push(current[i / 2] + d);
            }
            current = next;
        }
        // Expand block means back to per-value resolution.
        let bs = self.base_block >> available_deltas;
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.n {
            out.push(current[(i / bs.max(1)).min(current.len() - 1)]);
        }
        out
    }
}

/// Per-block means with the final partial block averaged over its actual
/// length. Block size 1 is the identity.
fn block_means(data: &[f64], block_size: usize) -> Vec<f64> {
    if block_size <= 1 {
        return data.to_vec();
    }
    data.chunks(block_size)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..100).map(|i| (i as f64 * 0.3).sin() * 10.0).collect()
    }

    #[test]
    fn full_reconstruction_recovers_values() {
        let data = sample();
        let h = BlockHierarchy::build(&data, 4);
        let back = h.reconstruct(3);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn single_level_is_identity() {
        let data = sample();
        let h = BlockHierarchy::build(&data, 1);
        assert_eq!(h.reconstruct(0), data);
        assert_eq!(h.base().len(), data.len());
    }

    #[test]
    fn base_is_block_means() {
        let data = vec![1.0, 3.0, 5.0, 7.0, 10.0];
        let h = BlockHierarchy::build(&data, 2); // block size 2
        assert_eq!(h.base(), &[2.0, 6.0, 10.0]);
    }

    #[test]
    fn error_shrinks_per_delta() {
        let data = sample();
        let h = BlockHierarchy::build(&data, 4);
        let mut last = f64::INFINITY;
        for k in 0..=3 {
            let back = h.reconstruct(k);
            let err = data
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(err < last || err < 1e-12, "step {k}: {err} !< {last}");
            last = err;
        }
        assert!(last < 1e-12);
    }

    #[test]
    fn base_sizes_shrink_with_levels() {
        let data = sample();
        let h2 = BlockHierarchy::build(&data, 2);
        let h4 = BlockHierarchy::build(&data, 4);
        assert!(h4.base().len() < h2.base().len());
        assert_eq!(h4.base().len(), data.len().div_ceil(8));
    }

    #[test]
    fn partial_final_block_handled() {
        let data = vec![1.0, 2.0, 3.0]; // not a multiple of the block size
        let h = BlockHierarchy::build(&data, 3); // base block 4
        assert_eq!(h.base().len(), 1);
        assert!((h.base()[0] - 2.0).abs() < 1e-15);
        let back = h.reconstruct(2);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn rejects_zero_levels() {
        BlockHierarchy::build(&[1.0], 0);
    }
}
