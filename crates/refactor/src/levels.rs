//! Building and traversing the full level hierarchy.
//!
//! This drives Alg. 1 + Alg. 2 per level: decimate `L^l → L^{l+1}`,
//! locate every fine vertex in the coarse mesh, compute the delta, repeat
//! until `N` levels exist. The hierarchy then restores any level from the
//! base plus a delta subset — the paper's progressive retrieval — without
//! ever touching the original data again.

use crate::decimate::{decimate, DecimationResult};
use crate::delta::{compute_delta, restore_level};
use crate::estimate::Estimator;
use crate::mapping::{build_mapping, Mapping};
use canopus_mesh::TriMesh;

/// Refactoring parameters (paper §III-B: `N` levels, per-level decimation
/// ratio `d` so that `d^l = 2^l` with the default `d = 2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefactorConfig {
    /// Total number of levels `N` (>= 1). `N = 1` means "no refactoring";
    /// the hierarchy is just the original data.
    pub num_levels: u32,
    /// Vertex-count ratio between adjacent levels (paper default 2).
    pub per_level_ratio: f64,
    /// The `Estimate(·)` variant for deltas.
    pub estimator: Estimator,
}

impl Default for RefactorConfig {
    fn default() -> Self {
        Self {
            num_levels: 3,
            per_level_ratio: 2.0,
            estimator: Estimator::Mean,
        }
    }
}

/// One accuracy level: its mesh and (exact) data.
#[derive(Debug, Clone)]
pub struct Level {
    pub mesh: TriMesh,
    pub data: Vec<f64>,
}

/// The complete refactored hierarchy for one variable.
#[derive(Debug, Clone)]
pub struct LevelHierarchy {
    /// Levels `0..N`, index = accuracy level (0 = full accuracy).
    pub levels: Vec<Level>,
    /// `mappings[l]`: fine level `l` vertices → coarse level `l+1`
    /// triangles (length `N-1`).
    pub mappings: Vec<Mapping>,
    /// `deltas[l] = delta^{l-(l+1)}` (length `N-1`).
    pub deltas: Vec<Vec<f64>>,
    pub config: RefactorConfig,
}

impl LevelHierarchy {
    /// Refactor `data` over `mesh` into `config.num_levels` levels.
    ///
    /// # Panics
    /// Panics if `config.num_levels == 0`, the ratio is < 1, or data and
    /// mesh disagree.
    pub fn build(mesh: &TriMesh, data: &[f64], config: RefactorConfig) -> Self {
        assert!(config.num_levels >= 1, "need at least one level");
        assert!(config.per_level_ratio >= 1.0, "ratio must be >= 1");
        assert_eq!(data.len(), mesh.num_vertices());

        let mut levels = vec![Level {
            mesh: mesh.clone(),
            data: data.to_vec(),
        }];
        let mut mappings = Vec::new();
        let mut deltas = Vec::new();

        for l in 0..config.num_levels.saturating_sub(1) {
            let fine = &levels[l as usize];
            let DecimationResult {
                mesh: coarse_mesh,
                data: coarse_data,
                ..
            } = decimate(&fine.mesh, &fine.data, config.per_level_ratio);
            let mapping = build_mapping(&fine.mesh, &coarse_mesh);
            let delta = compute_delta(
                &fine.mesh,
                &fine.data,
                &coarse_mesh,
                &coarse_data,
                &mapping,
                config.estimator,
            );
            mappings.push(mapping);
            deltas.push(delta);
            levels.push(Level {
                mesh: coarse_mesh,
                data: coarse_data,
            });
        }

        Self {
            levels,
            mappings,
            deltas,
            config,
        }
    }

    /// Number of levels `N`.
    pub fn num_levels(&self) -> u32 {
        self.levels.len() as u32
    }

    /// The base (coarsest) level `L^{N-1}`.
    pub fn base(&self) -> &Level {
        self.levels.last().expect("at least one level")
    }

    /// Decimation ratio `d^l = |V^0| / |V^l|` of a level.
    pub fn decimation_ratio(&self, level: u32) -> f64 {
        self.levels[level as usize]
            .mesh
            .decimation_ratio_from(&self.levels[0].mesh)
    }

    /// Restore the data of `target_level` starting from the base data and
    /// applying deltas `N-2, N-3, ..., target_level` — the paper's
    /// `L^2 + delta^{1-2} + delta^{0-1} = L^0` chain. Exact up to one
    /// floating-point rounding per applied delta.
    pub fn restore_to(&self, target_level: u32) -> Vec<f64> {
        assert!((target_level as usize) < self.levels.len());
        let n = self.levels.len();
        let mut current = self.base().data.clone();
        for l in (target_level as usize..n - 1).rev() {
            current = restore_level(
                &self.levels[l].mesh,
                &self.deltas[l],
                &self.levels[l + 1].mesh,
                &current,
                &self.mappings[l],
                self.config.estimator,
            );
        }
        current
    }

    /// Total byte size of the raw (uncompressed) products Canopus would
    /// store: base + all deltas. Used by the Fig. 5 experiments.
    pub fn refactored_raw_bytes(&self) -> usize {
        (self.base().data.len() + self.deltas.iter().map(Vec::len).sum::<usize>()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_mesh::quality;

    fn mesh_and_data(n: usize) -> (TriMesh, Vec<f64>) {
        let mesh = jitter_interior(
            &rectangle_mesh(
                n,
                n,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            17,
        );
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 7.0).sin() + (p.y * 4.0).cos())
            .collect();
        (mesh, data)
    }

    #[test]
    fn three_level_build_shapes() {
        let (mesh, data) = mesh_and_data(16);
        let h = LevelHierarchy::build(&mesh, &data, RefactorConfig::default());
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.mappings.len(), 2);
        assert_eq!(h.deltas.len(), 2);
        assert!((h.decimation_ratio(1) - 2.0).abs() < 0.2);
        assert!((h.decimation_ratio(2) - 4.0).abs() < 0.5);
        for level in &h.levels {
            assert!(quality::check(&level.mesh).is_manifold);
            assert_eq!(level.mesh.num_vertices(), level.data.len());
        }
    }

    #[test]
    fn restore_chain_is_exact() {
        let (mesh, data) = mesh_and_data(16);
        for estimator in [Estimator::Mean, Estimator::Barycentric] {
            let h = LevelHierarchy::build(
                &mesh,
                &data,
                RefactorConfig {
                    num_levels: 4,
                    per_level_ratio: 2.0,
                    estimator,
                },
            );
            // Every level restores to rounding accuracy, not just level 0.
            for target in 0..4u32 {
                let restored = h.restore_to(target);
                let max_err = restored
                    .iter()
                    .zip(&h.levels[target as usize].data)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_err < 1e-13,
                    "level {target} with {estimator:?}: err {max_err}"
                );
            }
        }
    }

    #[test]
    fn single_level_hierarchy_is_identity() {
        let (mesh, data) = mesh_and_data(8);
        let h = LevelHierarchy::build(
            &mesh,
            &data,
            RefactorConfig {
                num_levels: 1,
                ..Default::default()
            },
        );
        assert_eq!(h.num_levels(), 1);
        assert!(h.deltas.is_empty());
        assert_eq!(h.restore_to(0), data);
        assert_eq!(h.base().data, data);
    }

    #[test]
    fn refactored_size_roughly_matches_original() {
        // base (n/4) + delta (n/2-ish... fine level n) — the refactored
        // representation holds ~|V^0| + |V^1| + ... values total minus the
        // base replacing its own level.
        let (mesh, data) = mesh_and_data(16);
        let h = LevelHierarchy::build(&mesh, &data, RefactorConfig::default());
        let raw = data.len() * 8;
        let refactored = h.refactored_raw_bytes();
        // deltas: |V0| + |V1|, base: |V2| => ~1.75x the original.
        assert!(refactored > raw);
        assert!(refactored < 2 * raw);
    }

    #[test]
    fn deeper_hierarchies_shrink_the_base() {
        let (mesh, data) = mesh_and_data(20);
        let h2 = LevelHierarchy::build(
            &mesh,
            &data,
            RefactorConfig {
                num_levels: 2,
                ..Default::default()
            },
        );
        let h4 = LevelHierarchy::build(
            &mesh,
            &data,
            RefactorConfig {
                num_levels: 4,
                ..Default::default()
            },
        );
        assert!(h4.base().data.len() < h2.base().data.len());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn rejects_zero_levels() {
        let (mesh, data) = mesh_and_data(4);
        LevelHierarchy::build(
            &mesh,
            &data,
            RefactorConfig {
                num_levels: 0,
                ..Default::default()
            },
        );
    }
}
