//! The `Estimate(·)` function (paper Eqs. 2–3).
//!
//! `Estimate` predicts a fine-level value from the three corners of its
//! containing coarse triangle: `α·L_i + β·L_j + γ·L_k` with
//! `α + β + γ = 1`. The paper fixes `α = β = γ = 1/3` "for simplicity"
//! and leaves the optimal form for future study — we implement both that
//! default and the natural improvement (barycentric weights from the
//! vertex position), and ablate them in `canopus-bench`.

use canopus_mesh::TriMesh;

/// Which estimator to use for delta calculation/restoration. Encoder and
/// decoder must agree (the choice is recorded in the BP attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// The paper's default: equal weights `1/3` per corner.
    #[default]
    Mean,
    /// Barycentric interpolation: weights from the fine vertex's position
    /// inside the coarse triangle (clamped extrapolation outside).
    Barycentric,
}

impl Estimator {
    /// Stable identifier for metadata.
    pub fn id(&self) -> u8 {
        match self {
            Estimator::Mean => 0,
            Estimator::Barycentric => 1,
        }
    }

    /// Inverse of [`Estimator::id`].
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(Estimator::Mean),
            1 => Some(Estimator::Barycentric),
            _ => None,
        }
    }

    /// Predict the value at fine vertex `x` (a vertex of `fine_mesh`) from
    /// coarse triangle `tri` of `coarse_mesh` with corner data taken from
    /// `coarse_data`.
    #[inline]
    pub fn estimate(
        &self,
        fine_mesh: &TriMesh,
        x: u32,
        coarse_mesh: &TriMesh,
        coarse_data: &[f64],
        tri: u32,
    ) -> f64 {
        let [i, j, k] = coarse_mesh.triangle_vertices(tri);
        let (li, lj, lk) = (
            coarse_data[i as usize],
            coarse_data[j as usize],
            coarse_data[k as usize],
        );
        match self {
            Estimator::Mean => (li + lj + lk) / 3.0,
            Estimator::Barycentric => {
                let t = coarse_mesh.triangle(tri);
                match t.barycentric(fine_mesh.point(x)) {
                    Some([wa, wb, wc]) => wa * li + wb * lj + wc * lk,
                    // Degenerate coarse triangle: fall back to the mean.
                    None => (li + lj + lk) / 3.0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::geometry::Point2;

    fn one_triangle() -> TriMesh {
        TriMesh::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2]],
        )
    }

    fn fine_point(p: Point2) -> TriMesh {
        TriMesh::new(vec![p], vec![])
    }

    #[test]
    fn mean_estimator_ignores_position() {
        let coarse = one_triangle();
        let data = [3.0, 6.0, 9.0];
        for p in [Point2::new(0.1, 0.1), Point2::new(0.9, 0.05)] {
            let fine = fine_point(p);
            let e = Estimator::Mean.estimate(&fine, 0, &coarse, &data, 0);
            assert!((e - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn barycentric_reproduces_linear_fields_exactly() {
        let coarse = one_triangle();
        // f(x, y) = 2x + 5y + 1 at the corners.
        let data = [1.0, 3.0, 6.0];
        let p = Point2::new(0.25, 0.5);
        let fine = fine_point(p);
        let e = Estimator::Barycentric.estimate(&fine, 0, &coarse, &data, 0);
        assert!((e - (2.0 * p.x + 5.0 * p.y + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn barycentric_at_corner_returns_corner_value() {
        let coarse = one_triangle();
        let data = [7.0, -2.0, 4.0];
        let fine = fine_point(Point2::new(1.0, 0.0));
        let e = Estimator::Barycentric.estimate(&fine, 0, &coarse, &data, 0);
        assert!((e - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_triangle_falls_back_to_mean() {
        let coarse = TriMesh::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 1.0),
                Point2::new(2.0, 2.0),
            ],
            vec![[0, 1, 2]],
        );
        let data = [3.0, 6.0, 9.0];
        let fine = fine_point(Point2::new(0.5, 0.5));
        let e = Estimator::Barycentric.estimate(&fine, 0, &coarse, &data, 0);
        assert!((e - 6.0).abs() < 1e-12);
    }

    #[test]
    fn id_roundtrip() {
        for e in [Estimator::Mean, Estimator::Barycentric] {
            assert_eq!(Estimator::from_id(e.id()), Some(e));
        }
        assert_eq!(Estimator::from_id(9), None);
    }
}
