//! Edge-collapse mesh decimation (paper Alg. 1).
//!
//! The shortest edge is collapsed first: its endpoints `V_i, V_j` are
//! replaced by `V_k = (V_i + V_j) / 2` carrying `L_k = (L_i + L_j) / 2`
//! (the paper's `NewVertex` / `NewData` with the simple mean), incident
//! triangles are rewired, and the process repeats until the level's vertex
//! count has dropped by the decimation ratio (2 per level, so `d^l = 2^l`).
//!
//! Two guards keep every level restorable:
//! * the *link condition* (common neighbors of the endpoints must be
//!   exactly the opposite vertices of the edge's triangles) preserves
//!   manifoldness;
//! * an *orientation check* rejects collapses that would fold any rewired
//!   triangle (restoration's point location assumes an embedded mesh).
//!
//! Rejected edges are simply discarded — their endpoints usually become
//! collapsible via other edges; if the queue drains before the target is
//! met the achieved ratio is reported honestly.

use crate::pqueue::{edge, EdgeQueue};
use canopus_mesh::geometry::{signed_area2, Point2, GEOM_EPS};
use canopus_mesh::TriMesh;

/// Outcome of one decimation step (level `l` → level `l+1`).
#[derive(Debug, Clone)]
pub struct DecimationResult {
    /// The decimated mesh `G^{l+1}`.
    pub mesh: TriMesh,
    /// The decimated data `L^{l+1}` (same order as `mesh` vertices).
    pub data: Vec<f64>,
    /// Achieved `|V^l| / |V^{l+1}|`.
    pub achieved_ratio: f64,
    /// Number of collapses performed.
    pub collapses: usize,
    /// Number of candidate edges rejected by the guards.
    pub rejected: usize,
    /// For each output vertex: `Some(original id)` if it is a surviving
    /// input vertex, `None` if it was created by a collapse. Partition-
    /// parallel decimation uses this to stitch shared vertices.
    pub original_index: Vec<Option<u32>>,
}

struct Working {
    points: Vec<Point2>,
    data: Vec<f64>,
    alive_v: Vec<bool>,
    tris: Vec<[u32; 3]>,
    alive_t: Vec<bool>,
    /// Triangles incident to each vertex.
    vtris: Vec<Vec<u32>>,
    alive_count: usize,
    queue: EdgeQueue,
    /// Data-contrast weight in the edge priority (0 = pure shortest-edge,
    /// the paper's default).
    data_weight: f64,
    /// `1 / field_range`, precomputed for the priority formula.
    inv_range: f64,
    /// Vertices that must survive (partition-shared vertices in the
    /// parallel decimation). Empty = none frozen.
    frozen: Vec<bool>,
}

impl Working {
    fn new(mesh: &TriMesh, data: &[f64], data_weight: f64) -> Self {
        assert_eq!(
            mesh.num_vertices(),
            data.len(),
            "data must have one value per vertex"
        );
        let nv = mesh.num_vertices();
        let tris: Vec<[u32; 3]> = mesh.triangles().to_vec();
        let mut vtris = vec![Vec::new(); nv];
        for (ti, t) in tris.iter().enumerate() {
            for &v in t {
                vtris[v as usize].push(ti as u32);
            }
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let inv_range = 1.0 / (hi - lo).max(f64::MIN_POSITIVE);
        let mut w = Self {
            points: mesh.points().to_vec(),
            data: data.to_vec(),
            alive_v: vec![true; nv],
            alive_t: vec![true; tris.len()],
            tris,
            vtris,
            alive_count: nv,
            queue: EdgeQueue::with_capacity(mesh.num_triangles() * 3 / 2),
            data_weight,
            inv_range,
            frozen: Vec::new(),
        };
        for &(u, v) in &mesh.edges() {
            let pr = w.priority(u, v);
            w.queue.push(edge(u, v), pr);
        }
        w
    }

    /// Edge priority: length, optionally scaled up by the data contrast
    /// across the edge so feature-crossing edges collapse last.
    fn priority(&self, u: u32, v: u32) -> f64 {
        let len = self.points[u as usize].distance(self.points[v as usize]);
        if self.data_weight == 0.0 {
            len
        } else {
            let contrast = (self.data[u as usize] - self.data[v as usize]).abs() * self.inv_range;
            len * (1.0 + self.data_weight * contrast)
        }
    }

    /// Sorted unique one-ring neighbors of `v` (alive triangles only).
    fn neighbors(&self, v: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(8);
        for &t in &self.vtris[v as usize] {
            if !self.alive_t[t as usize] {
                continue;
            }
            for &w in &self.tris[t as usize] {
                if w != v {
                    out.push(w);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Alive triangles containing both `u` and `v`.
    fn edge_triangles(&self, u: u32, v: u32) -> Vec<u32> {
        self.vtris[u as usize]
            .iter()
            .copied()
            .filter(|&t| self.alive_t[t as usize] && self.tris[t as usize].contains(&v))
            .collect()
    }

    /// Attempt to collapse edge `(u, v)`. Returns whether it happened.
    fn try_collapse(&mut self, u: u32, v: u32) -> bool {
        debug_assert!(self.alive_v[u as usize] && self.alive_v[v as usize]);
        if !self.frozen.is_empty()
            && (self.frozen.get(u as usize).copied().unwrap_or(false)
                || self.frozen.get(v as usize).copied().unwrap_or(false))
        {
            return false;
        }
        let tris_uv = self.edge_triangles(u, v);
        // A manifold interior edge has 2 incident triangles, a boundary
        // edge 1. Anything else is already broken.
        if tris_uv.is_empty() || tris_uv.len() > 2 {
            return false;
        }

        // Link condition: common one-ring neighbors must be exactly the
        // opposite vertices of the edge's triangles.
        let nu = self.neighbors(u);
        let nv = self.neighbors(v);
        let common: Vec<u32> = nu
            .iter()
            .copied()
            .filter(|x| nv.binary_search(x).is_ok())
            .collect();
        if common.len() != tris_uv.len() {
            return false;
        }

        let k_pos = self.points[u as usize].midpoint(self.points[v as usize]);

        // Simulate the rewired triangles: all must stay positively
        // oriented and mutually distinct.
        let mut new_tris: Vec<(u32, [u32; 3])> = Vec::with_capacity(8);
        let k_id = self.points.len() as u32;
        let mut seen: Vec<[u32; 3]> = Vec::with_capacity(8);
        for &src in [u, v].iter() {
            for &t in &self.vtris[src as usize] {
                if !self.alive_t[t as usize] || tris_uv.contains(&t) {
                    continue;
                }
                let mut tri = self.tris[t as usize];
                for slot in &mut tri {
                    if *slot == u || *slot == v {
                        *slot = k_id;
                    }
                }
                let pos = |id: u32| -> Point2 {
                    if id == k_id {
                        k_pos
                    } else {
                        self.points[id as usize]
                    }
                };
                if signed_area2(pos(tri[0]), pos(tri[1]), pos(tri[2])) <= GEOM_EPS {
                    return false; // would fold or degenerate
                }
                let mut sorted = tri;
                sorted.sort_unstable();
                if seen.contains(&sorted) {
                    return false; // would create a duplicate triangle
                }
                seen.push(sorted);
                new_tris.push((t, tri));
            }
        }

        // --- commit ---
        let k_data = (self.data[u as usize] + self.data[v as usize]) * 0.5;
        self.points.push(k_pos);
        self.data.push(k_data);
        self.alive_v.push(true);
        self.vtris.push(Vec::with_capacity(new_tris.len()));

        for &t in &tris_uv {
            self.alive_t[t as usize] = false;
        }
        for (t, tri) in &new_tris {
            self.tris[*t as usize] = *tri;
            self.vtris[k_id as usize].push(*t);
        }
        self.alive_v[u as usize] = false;
        self.alive_v[v as usize] = false;
        // Net vertex change: -2 dead +1 new.
        self.alive_count -= 1;

        // Queue maintenance: drop edges incident to u and v, insert edges
        // incident to k.
        for &x in &nu {
            self.queue.remove(edge(u, x));
        }
        for &x in &nv {
            self.queue.remove(edge(v, x));
        }
        for x in self.neighbors(k_id) {
            let pr = self.priority(k_id, x);
            self.queue.push(edge(k_id, x), pr);
        }
        true
    }

    /// Compact alive vertices/triangles into a fresh `TriMesh` + data.
    /// Returns the per-output-vertex original index (None for collapse-
    /// created vertices, whose working index is >= the input count).
    fn finish(self, original_count: usize) -> (TriMesh, Vec<f64>, Vec<Option<u32>>) {
        let mut remap = vec![u32::MAX; self.points.len()];
        let mut points = Vec::with_capacity(self.alive_count);
        let mut data = Vec::with_capacity(self.alive_count);
        let mut original_index = Vec::with_capacity(self.alive_count);
        for (i, &alive) in self.alive_v.iter().enumerate() {
            if alive {
                remap[i] = points.len() as u32;
                points.push(self.points[i]);
                data.push(self.data[i]);
                original_index.push((i < original_count).then_some(i as u32));
            }
        }
        let mut tris = Vec::new();
        for (ti, t) in self.tris.iter().enumerate() {
            if self.alive_t[ti] {
                tris.push([
                    remap[t[0] as usize],
                    remap[t[1] as usize],
                    remap[t[2] as usize],
                ]);
            }
        }
        (TriMesh::new(points, tris), data, original_index)
    }
}

/// Decimate `mesh`/`data` by `ratio` (paper default 2): collapse shortest
/// edges until `|V^{l+1}| <= |V^l| / ratio` or no collapsible edge
/// remains.
///
/// # Panics
/// Panics if `ratio < 1` or `data.len() != mesh.num_vertices()`.
pub fn decimate(mesh: &TriMesh, data: &[f64], ratio: f64) -> DecimationResult {
    assert!(ratio >= 1.0, "decimation ratio must be >= 1, got {ratio}");
    let n0 = mesh.num_vertices();
    let target = ((n0 as f64 / ratio).ceil() as usize).max(3);

    let mut w = Working::new(mesh, data, 0.0);
    let mut collapses = 0usize;
    let mut rejected = 0usize;
    while w.alive_count > target {
        let Some(((u, v), _len)) = w.queue.pop() else {
            break; // no collapsible edges left
        };
        if !w.alive_v[u as usize] || !w.alive_v[v as usize] {
            continue; // stale entry
        }
        if w.try_collapse(u, v) {
            collapses += 1;
        } else {
            rejected += 1;
        }
    }

    let alive = w.alive_count;
    let (out_mesh, out_data, original_index) = w.finish(n0);
    debug_assert_eq!(out_mesh.num_vertices(), alive);
    DecimationResult {
        achieved_ratio: n0 as f64 / out_mesh.num_vertices().max(1) as f64,
        mesh: out_mesh,
        data: out_data,
        collapses,
        rejected,
        original_index,
    }
}

/// Decimate while *freezing* the flagged vertices (they survive
/// unconditionally and no incident edge collapses). This is the building
/// block of partition-parallel decimation: partition-shared vertices stay
/// fixed so the partition results stitch back into one valid mesh.
pub fn decimate_frozen(
    mesh: &TriMesh,
    data: &[f64],
    ratio: f64,
    frozen: &[bool],
) -> DecimationResult {
    assert!(ratio >= 1.0, "decimation ratio must be >= 1");
    assert_eq!(frozen.len(), mesh.num_vertices(), "one flag per vertex");
    let n0 = mesh.num_vertices();
    let target = ((n0 as f64 / ratio).ceil() as usize).max(3);

    let mut w = Working::new(mesh, data, 0.0);
    w.frozen = frozen.to_vec();
    let mut collapses = 0usize;
    let mut rejected = 0usize;
    while w.alive_count > target {
        let Some(((u, v), _)) = w.queue.pop() else {
            break;
        };
        if !w.alive_v[u as usize] || !w.alive_v[v as usize] {
            continue;
        }
        if w.try_collapse(u, v) {
            collapses += 1;
        } else {
            rejected += 1;
        }
    }
    let (out_mesh, out_data, original_index) = w.finish(n0);
    DecimationResult {
        achieved_ratio: n0 as f64 / out_mesh.num_vertices().max(1) as f64,
        mesh: out_mesh,
        data: out_data,
        collapses,
        rejected,
        original_index,
    }
}

/// Data-aware collapse ordering: prioritize edges by
/// `length * (1 + w * |f_u - f_v| / field_range)`, so edges crossing
/// steep features (blob flanks, shock fronts) collapse *last*. The paper
/// leaves the priority choice "for future study" (§III-C1); this is the
/// natural feature-preserving refinement of its shortest-edge default,
/// ablated in `canopus-bench`.
pub fn decimate_data_aware(
    mesh: &TriMesh,
    data: &[f64],
    ratio: f64,
    weight: f64,
) -> DecimationResult {
    assert!(ratio >= 1.0, "decimation ratio must be >= 1");
    assert!(weight >= 0.0, "weight must be non-negative");
    let n0 = mesh.num_vertices();
    let target = ((n0 as f64 / ratio).ceil() as usize).max(3);

    let mut w = Working::new(mesh, data, weight);
    let mut collapses = 0usize;
    let mut rejected = 0usize;
    while w.alive_count > target {
        let Some(((u, v), _)) = w.queue.pop() else {
            break;
        };
        if !w.alive_v[u as usize] || !w.alive_v[v as usize] {
            continue;
        }
        if w.try_collapse(u, v) {
            collapses += 1;
        } else {
            rejected += 1;
        }
    }
    let (out_mesh, out_data, original_index) = w.finish(n0);
    DecimationResult {
        achieved_ratio: n0 as f64 / out_mesh.num_vertices().max(1) as f64,
        mesh: out_mesh,
        data: out_data,
        collapses,
        rejected,
        original_index,
    }
}

/// Random-order collapse baseline for the ablation bench: identical
/// machinery, but the "priority" is a hash of the edge instead of its
/// length. Shows why shortest-edge ordering preserves features.
pub fn decimate_random_order(
    mesh: &TriMesh,
    data: &[f64],
    ratio: f64,
    seed: u64,
) -> DecimationResult {
    assert!(ratio >= 1.0);
    let n0 = mesh.num_vertices();
    let target = ((n0 as f64 / ratio).ceil() as usize).max(3);

    let mut w = Working::new(mesh, data, 0.0);
    // Rebuild the queue with hashed priorities.
    let mut q = EdgeQueue::with_capacity(mesh.num_edges());
    for &(u, v) in &mesh.edges() {
        q.push(edge(u, v), hash_priority(u, v, seed));
    }
    w.queue = q;

    let mut collapses = 0usize;
    let mut rejected = 0usize;
    while w.alive_count > target {
        let Some(((u, v), _)) = w.queue.pop() else {
            break;
        };
        if !w.alive_v[u as usize] || !w.alive_v[v as usize] {
            continue;
        }
        // New edges created by collapses get hashed priorities too: patch
        // them by draining/reinserting is overkill; instead we rely on
        // try_collapse pushing length-keyed entries, which is fine for a
        // baseline (the initial order is already randomized).
        if w.try_collapse(u, v) {
            collapses += 1;
        } else {
            rejected += 1;
        }
    }
    let (out_mesh, out_data, original_index) = w.finish(n0);
    DecimationResult {
        achieved_ratio: n0 as f64 / out_mesh.num_vertices().max(1) as f64,
        mesh: out_mesh,
        data: out_data,
        collapses,
        rejected,
        original_index,
    }
}

fn hash_priority(u: u32, v: u32, seed: u64) -> f64 {
    let mut x = ((u as u64) << 32 | v as u64) ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::generators::{annulus_mesh, jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::Aabb;
    use canopus_mesh::quality;

    fn grid(n: usize) -> TriMesh {
        jitter_interior(
            &rectangle_mesh(
                n,
                n,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            42,
        )
    }

    #[test]
    fn halves_vertex_count() {
        let m = grid(16);
        let data: Vec<f64> = (0..m.num_vertices()).map(|i| i as f64).collect();
        let r = decimate(&m, &data, 2.0);
        assert!(
            (r.achieved_ratio - 2.0).abs() < 0.1,
            "achieved ratio {} should be ~2",
            r.achieved_ratio
        );
        assert_eq!(r.mesh.num_vertices(), r.data.len());
    }

    #[test]
    fn decimated_mesh_stays_valid() {
        let m = grid(16);
        let data = vec![0.0; m.num_vertices()];
        let r = decimate(&m, &data, 2.0);
        let rep = quality::check(&r.mesh);
        assert!(
            rep.is_manifold,
            "decimated mesh must stay manifold: {rep:?}"
        );
        assert_eq!(rep.inverted_triangles, 0);
        assert_eq!(rep.degenerate_triangles, 0);
    }

    #[test]
    fn repeated_decimation_builds_a_pyramid() {
        let m = grid(20);
        let mut mesh = m.clone();
        let mut data: Vec<f64> = mesh.points().iter().map(|p| p.x + p.y).collect();
        for level in 1..=4 {
            let r = decimate(&mesh, &data, 2.0);
            let rep = quality::check(&r.mesh);
            assert!(rep.is_manifold, "level {level} must be manifold");
            assert_eq!(rep.inverted_triangles, 0, "level {level} folded");
            assert!(r.mesh.num_vertices() < mesh.num_vertices());
            mesh = r.mesh;
            data = r.data;
        }
        // Total decimation ~16x.
        let total = m.num_vertices() as f64 / mesh.num_vertices() as f64;
        assert!(total > 10.0, "4 levels should reach >10x, got {total:.1}");
    }

    #[test]
    fn annulus_decimation_preserves_topology() {
        let m = jitter_interior(&annulus_mesh(8, 48, 0.4, 1.0), 0.2, 7);
        let data = vec![1.0; m.num_vertices()];
        let r = decimate(&m, &data, 2.0);
        let rep = quality::check(&r.mesh);
        assert!(rep.is_manifold);
        assert_eq!(
            rep.euler_characteristic, 0,
            "annulus must keep genus under decimation"
        );
    }

    #[test]
    fn data_averages_along_collapses() {
        // Constant field stays constant under midpoint/mean collapse.
        let m = grid(10);
        let data = vec![3.5; m.num_vertices()];
        let r = decimate(&m, &data, 2.0);
        for &v in &r.data {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_field_is_exactly_preserved() {
        // Midpoint collapse of a linear field keeps the field linear:
        // data(k) = (f(i)+f(j))/2 = f((Vi+Vj)/2).
        let m = grid(12);
        let f = |p: Point2| 2.0 * p.x - 3.0 * p.y + 1.0;
        let data: Vec<f64> = m.points().iter().map(|&p| f(p)).collect();
        let r = decimate(&m, &data, 2.0);
        for (i, &v) in r.data.iter().enumerate() {
            let expect = f(r.mesh.point(i as canopus_mesh::VertexId));
            assert!(
                (v - expect).abs() < 1e-9,
                "vertex {i}: {v} vs linear {expect}"
            );
        }
    }

    #[test]
    fn ratio_one_is_identity_sized() {
        let m = grid(6);
        let data = vec![0.0; m.num_vertices()];
        let r = decimate(&m, &data, 1.0);
        assert_eq!(r.mesh.num_vertices(), m.num_vertices());
        assert_eq!(r.collapses, 0);
    }

    #[test]
    fn shortest_edges_collapse_first() {
        // A mesh with one tiny edge: that edge's endpoints must merge in
        // the very first collapse.
        let mut points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
            Point2::new(0.5001, 0.5001), // nearly coincident with 4
        ];
        // Fan around the nearly-coincident pair.
        let tris = vec![
            [0u32, 1, 4],
            [1, 5, 4],
            [1, 2, 5],
            [2, 3, 5],
            [3, 4, 5],
            [3, 0, 4],
        ];
        let m = TriMesh::new(std::mem::take(&mut points), tris);
        let data = vec![0.0, 0.0, 0.0, 0.0, 10.0, 20.0];
        let r = decimate(&m, &data, 6.0 / 5.0);
        assert_eq!(r.collapses, 1);
        // The merged vertex carries the mean of the twins' data.
        assert!(r.data.contains(&15.0));
    }

    #[test]
    fn data_aware_priority_preserves_features_better() {
        // A field with one sharp bump: data-aware ordering should keep
        // the bump's peak value higher after aggressive decimation.
        let m = grid(24);
        let data: Vec<f64> = m
            .points()
            .iter()
            .map(|p| {
                let d2 = (p.x - 0.5).powi(2) + (p.y - 0.5).powi(2);
                (-d2 / (2.0 * 0.03f64.powi(2))).exp()
            })
            .collect();
        let peak = |r: &DecimationResult| r.data.iter().cloned().fold(0.0f64, f64::max);
        let mut mesh = m.clone();
        let mut plain_data = data.clone();
        let mut aware_mesh = m.clone();
        let mut aware_data = data.clone();
        for _ in 0..3 {
            let r = decimate(&mesh, &plain_data, 2.0);
            mesh = r.mesh;
            plain_data = r.data;
            let r = decimate_data_aware(&aware_mesh, &aware_data, 2.0, 8.0);
            aware_mesh = r.mesh;
            aware_data = r.data;
        }
        let plain_peak = plain_data.iter().cloned().fold(0.0f64, f64::max);
        let aware_peak = aware_data.iter().cloned().fold(0.0f64, f64::max);
        let _ = peak;
        assert!(
            aware_peak >= plain_peak,
            "data-aware ({aware_peak}) should preserve the bump at least as well as plain ({plain_peak})"
        );
        assert!(quality::check(&aware_mesh).is_manifold);
    }

    #[test]
    fn data_aware_zero_weight_matches_plain() {
        let m = grid(10);
        let data: Vec<f64> = (0..m.num_vertices())
            .map(|i| (i as f64 * 0.3).sin())
            .collect();
        let a = decimate(&m, &data, 2.0);
        let b = decimate_data_aware(&m, &data, 2.0, 0.0);
        assert_eq!(a.mesh, b.mesh, "weight 0 must reduce to shortest-edge");
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn random_order_baseline_also_halves() {
        let m = grid(12);
        let data: Vec<f64> = (0..m.num_vertices()).map(|i| (i as f64).sin()).collect();
        let r = decimate_random_order(&m, &data, 2.0, 99);
        assert!((r.achieved_ratio - 2.0).abs() < 0.2);
        assert!(quality::check(&r.mesh).is_manifold);
    }

    #[test]
    fn decimation_is_deterministic() {
        let m = grid(10);
        let data: Vec<f64> = (0..m.num_vertices()).map(|i| i as f64 * 0.1).collect();
        let a = decimate(&m, &data, 2.0);
        let b = decimate(&m, &data, 2.0);
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.data, b.data);
    }

    #[test]
    #[should_panic(expected = "one value per vertex")]
    fn rejects_mismatched_data() {
        let m = grid(4);
        decimate(&m, &[1.0, 2.0], 2.0);
    }
}
