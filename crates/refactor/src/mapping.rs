//! Fine-vertex → coarse-triangle mapping.
//!
//! Restoration must know, for each vertex `V_x^l`, which triangle
//! `<V_i^{l+1}, V_j^{l+1}, V_k^{l+1}>` it falls into. The paper stores
//! this mapping in ADIOS metadata at refactor time precisely because the
//! brute-force search at restore time "can be expensive" (§III-E2). We
//! compute it once here with the grid locator and serialize it next to
//! each delta.

use canopus_mesh::locate::GridLocator;
use canopus_mesh::TriMesh;
use rayon::prelude::*;

/// For each fine vertex, the containing (or nearest, if the hull shrank)
/// coarse triangle id.
pub type Mapping = Vec<u32>;

/// Build the mapping from every vertex of `fine` to a triangle of
/// `coarse`. Vertices outside the coarse hull are clamped to the nearest
/// triangle — their barycentric estimate extrapolates, and the delta
/// absorbs whatever error that introduces.
///
/// # Panics
/// Panics if `coarse` has no triangles.
pub fn build_mapping(fine: &TriMesh, coarse: &TriMesh) -> Mapping {
    assert!(
        coarse.num_triangles() > 0,
        "cannot map onto an empty coarse mesh"
    );
    let locator = GridLocator::build(coarse);
    fine.points()
        .par_iter()
        .map(|&p| {
            locator
                .locate(coarse, p)
                .expect("coarse mesh is non-empty")
                .triangle()
        })
        .collect()
}

/// Serialize a mapping as little-endian u32s.
pub fn mapping_to_bytes(mapping: &Mapping) -> Vec<u8> {
    let mut out = Vec::with_capacity(mapping.len() * 4);
    for &t in mapping {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

/// Parse a mapping serialized by [`mapping_to_bytes`].
pub fn mapping_from_bytes(bytes: &[u8]) -> Result<Mapping, String> {
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "mapping byte length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decimate::decimate;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};

    fn fine_and_coarse() -> (TriMesh, TriMesh) {
        let fine = jitter_interior(
            &rectangle_mesh(
                12,
                12,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            11,
        );
        let data = vec![0.0; fine.num_vertices()];
        let coarse = decimate(&fine, &data, 2.0).mesh;
        (fine, coarse)
    }

    #[test]
    fn every_fine_vertex_gets_a_triangle() {
        let (fine, coarse) = fine_and_coarse();
        let mapping = build_mapping(&fine, &coarse);
        assert_eq!(mapping.len(), fine.num_vertices());
        for &t in &mapping {
            assert!((t as usize) < coarse.num_triangles());
        }
    }

    #[test]
    fn interior_vertices_map_to_containing_triangles() {
        let (fine, coarse) = fine_and_coarse();
        let mapping = build_mapping(&fine, &coarse);
        let mut contained = 0usize;
        for (v, &t) in mapping.iter().enumerate() {
            if coarse.triangle(t).contains(fine.point(v as u32)) {
                contained += 1;
            }
        }
        // Most fine vertices sit inside the coarse hull; only
        // boundary-adjacent ones (a perimeter band) may be clamped.
        assert!(
            contained as f64 > 0.8 * fine.num_vertices() as f64,
            "only {contained}/{} contained",
            fine.num_vertices()
        );
    }

    #[test]
    fn mapping_is_deterministic() {
        let (fine, coarse) = fine_and_coarse();
        assert_eq!(build_mapping(&fine, &coarse), build_mapping(&fine, &coarse));
    }

    #[test]
    fn serialization_roundtrip() {
        let m: Mapping = vec![0, 7, 42, u32::MAX];
        let bytes = mapping_to_bytes(&m);
        assert_eq!(bytes.len(), 16);
        assert_eq!(mapping_from_bytes(&bytes).unwrap(), m);
        assert!(mapping_from_bytes(&bytes[..5]).is_err());
        assert_eq!(mapping_from_bytes(&[]).unwrap(), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "empty coarse mesh")]
    fn rejects_empty_coarse() {
        let (fine, _) = fine_and_coarse();
        build_mapping(&fine, &TriMesh::default());
    }
}
