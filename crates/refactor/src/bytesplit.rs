//! Byte-splitting refactorer.
//!
//! Paper §III-C: "In general, Canopus supports various approaches to
//! refactoring data, including byte splitting [19], block splitting [8],
//! and mesh decimation." Byte splitting (the Exacution/EXAFEL lineage the
//! paper cites as [19]) decomposes each double into byte planes: the base
//! product carries the most significant bytes of every value (sign +
//! exponent + leading mantissa), and each delta appends the next bytes.
//! Restoration concatenates whatever prefixes are available and
//! zero-fills the rest, giving progressively tighter *relative* error.
//!
//! Unlike mesh decimation, byte splitting keeps the full mesh resolution
//! at every level — it trades precision instead of resolution — and its
//! products do not compress as well (high mantissa bytes are
//! noise-like). The `repro ablations` refactorer comparison quantifies
//! exactly that trade-off, reproducing the paper's rationale for
//! preferring decimation.

use canopus_mesh::FieldStats;

/// A byte-split plan: how many bytes of each f64 go to each product.
/// Products are ordered base-first. The sum must be 8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytePlan(Vec<usize>);

impl BytePlan {
    /// Build a plan; `bytes_per_product` is base-first.
    ///
    /// # Panics
    /// Panics unless every entry is ≥ 1 and the entries sum to 8.
    pub fn new(bytes_per_product: Vec<usize>) -> Self {
        assert!(
            !bytes_per_product.is_empty() && bytes_per_product.iter().all(|&b| b >= 1),
            "every product needs at least one byte"
        );
        assert_eq!(
            bytes_per_product.iter().sum::<usize>(),
            8,
            "an f64 has exactly 8 bytes"
        );
        Self(bytes_per_product)
    }

    /// The paper-style 3-product plan: 2-byte base (sign + exponent +
    /// 4 mantissa bits), then 3 + 3 mantissa bytes.
    pub fn three_level() -> Self {
        Self::new(vec![2, 3, 3])
    }

    pub fn num_products(&self) -> usize {
        self.0.len()
    }

    pub fn bytes_of(&self, product: usize) -> usize {
        self.0[product]
    }
}

/// Split `data` into byte-plane products (base first). Bytes are taken
/// most-significant-first so earlier products dominate accuracy.
pub fn split_bytes(data: &[f64], plan: &BytePlan) -> Vec<Vec<u8>> {
    let mut products: Vec<Vec<u8>> = plan
        .0
        .iter()
        .map(|&b| Vec::with_capacity(b * data.len()))
        .collect();
    for &x in data {
        let be = x.to_bits().to_be_bytes();
        let mut offset = 0;
        for (product, &nbytes) in products.iter_mut().zip(&plan.0) {
            product.extend_from_slice(&be[offset..offset + nbytes]);
            offset += nbytes;
        }
    }
    products
}

/// Reconstruct values from the first `available` products; missing low
/// bytes are zero-filled (truncation toward zero magnitude).
///
/// # Panics
/// Panics if `available` is 0 or exceeds the plan, or product sizes are
/// inconsistent.
pub fn reconstruct_bytes(products: &[&[u8]], plan: &BytePlan, n: usize) -> Vec<f64> {
    let available = products.len();
    assert!(
        available >= 1 && available <= plan.num_products(),
        "need between 1 and {} products",
        plan.num_products()
    );
    for (i, p) in products.iter().enumerate() {
        assert_eq!(p.len(), plan.bytes_of(i) * n, "product {i} size mismatch");
    }
    let mut out = Vec::with_capacity(n);
    for v in 0..n {
        let mut be = [0u8; 8];
        let mut offset = 0;
        for (i, p) in products.iter().enumerate() {
            let nbytes = plan.bytes_of(i);
            be[offset..offset + nbytes].copy_from_slice(&p[v * nbytes..(v + 1) * nbytes]);
            offset += nbytes;
        }
        out.push(f64::from_bits(u64::from_be_bytes(be)));
    }
    out
}

/// Worst-case relative error of reconstructing with the first `available`
/// products: `2^-(mantissa_bits_kept)`.
pub fn relative_error_bound(plan: &BytePlan, available: usize) -> f64 {
    let bits_kept: usize = plan.0[..available].iter().map(|b| b * 8).sum();
    // 12 bits of sign+exponent precede the mantissa.
    let mantissa_kept = bits_kept.saturating_sub(12);
    f64::powi(2.0, -(mantissa_kept as i32))
}

/// Convenience: max absolute error of a byte-split reconstruction against
/// the original, for tests/benches.
pub fn measure_error(original: &[f64], reconstructed: &[f64]) -> (f64, f64) {
    let abs = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let range = FieldStats::of(original).range().max(f64::MIN_POSITIVE);
    (abs, abs / range)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..257)
            .map(|i| ((i as f64) * 0.7).sin() * 1e3 + 0.123456789)
            .collect()
    }

    #[test]
    fn full_reconstruction_is_bit_exact() {
        let data = sample();
        let plan = BytePlan::three_level();
        let products = split_bytes(&data, &plan);
        let refs: Vec<&[u8]> = products.iter().map(|p| p.as_slice()).collect();
        let back = reconstruct_bytes(&refs, &plan, data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn accuracy_improves_per_product() {
        let data = sample();
        let plan = BytePlan::three_level();
        let products = split_bytes(&data, &plan);
        let mut last_err = f64::INFINITY;
        for available in 1..=3 {
            let refs: Vec<&[u8]> = products[..available].iter().map(|p| p.as_slice()).collect();
            let back = reconstruct_bytes(&refs, &plan, data.len());
            let (abs, _) = measure_error(&data, &back);
            assert!(
                abs < last_err || abs == 0.0,
                "error must shrink: {abs} !< {last_err}"
            );
            last_err = abs;
        }
        assert_eq!(last_err, 0.0);
    }

    #[test]
    fn base_only_error_respects_relative_bound() {
        let data = sample();
        let plan = BytePlan::three_level();
        let products = split_bytes(&data, &plan);
        let back = reconstruct_bytes(&[&products[0]], &plan, data.len());
        let bound = relative_error_bound(&plan, 1);
        for (a, b) in data.iter().zip(&back) {
            let rel = (a - b).abs() / a.abs().max(f64::MIN_POSITIVE);
            assert!(rel <= bound, "rel err {rel} > bound {bound} for {a}");
        }
    }

    #[test]
    fn special_values_survive() {
        let data = vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            5e-324,
        ];
        let plan = BytePlan::new(vec![4, 4]);
        let products = split_bytes(&data, &plan);
        let refs: Vec<&[u8]> = products.iter().map(|p| p.as_slice()).collect();
        let back = reconstruct_bytes(&refs, &plan, data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Even base-only keeps the sign/exponent class of specials.
        let base_only = reconstruct_bytes(&[&products[0]], &plan, data.len());
        assert!(base_only[2].is_infinite());
        assert!(base_only[4].is_nan());
    }

    #[test]
    fn product_sizes_match_plan() {
        let data = sample();
        let plan = BytePlan::new(vec![1, 2, 5]);
        let products = split_bytes(&data, &plan);
        assert_eq!(products[0].len(), data.len());
        assert_eq!(products[1].len(), 2 * data.len());
        assert_eq!(products[2].len(), 5 * data.len());
    }

    #[test]
    #[should_panic(expected = "exactly 8 bytes")]
    fn rejects_bad_plan() {
        BytePlan::new(vec![4, 3]);
    }

    #[test]
    fn relative_bounds_shrink() {
        let plan = BytePlan::three_level();
        let b1 = relative_error_bound(&plan, 1);
        let b2 = relative_error_bound(&plan, 2);
        let b3 = relative_error_bound(&plan, 3);
        assert!(b1 > b2 && b2 > b3);
        assert_eq!(b1, f64::powi(2.0, -4)); // 16 bits - 12 = 4 mantissa bits
    }
}
