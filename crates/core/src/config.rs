//! Canopus pipeline configuration.

use crate::tiering::TieringPolicy;
use canopus_compress::CodecKind;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::placement::PlacementPolicy;
use canopus_storage::FaultPlan;

/// End-to-end configuration: how to refactor, how to compress, how to
/// place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanopusConfig {
    /// Levels / ratio / estimator (paper §III-B/C).
    pub refactor: RefactorConfig,
    /// Codec for the base and deltas. The paper integrates ZFP; the
    /// tolerance here is *relative to the variable's value range* —
    /// each `write` multiplies it by `max - min` of the data, so one
    /// config works across variables of different scales.
    pub codec: RelativeCodec,
    /// Tier assignment policy (paper §III-D).
    pub policy: PlacementPolicy,
    /// Number of spatial chunks each delta is split into (1 = unchunked).
    /// Chunking enables the paper's focused data retrieval: a region of
    /// interest can be refined by fetching only the intersecting chunks
    /// ("reading smaller subsets of high accuracy data", §III-E/§IV-D).
    pub delta_chunks: u32,
    /// Store each delta's Morton spatial chunks packed into a few shard
    /// objects per tier with a chunk index (byte ranges, bounding
    /// boxes, per-chunk checksums) in the manifest — format rev `CBP3`.
    /// Region refinement then fetches only the chunks whose bounding
    /// boxes intersect the request, via ranged reads, turning region
    /// I/O from O(level) into O(region). `false` — the default — keeps
    /// today's layout (one monolithic or per-chunk object per delta)
    /// and its byte-identity guarantees. The chunk count is
    /// `delta_chunks` when that is > 1, else a default spatial split.
    pub spatial_chunking: bool,
    /// Bounded prefetch depth of the pipelined restore engine: how many
    /// fetched-but-undecoded blocks may sit between the tier-read stage
    /// and the parallel decode stage. `0` selects the strictly serial
    /// read → decode → restore path.
    pub pipeline_depth: u32,
    /// Capacity (in entries) of the decoded-level LRU cache each reader
    /// keeps, keyed by `(var, level)`. A repeat read of a cached level
    /// performs zero tier I/O and zero decompression. `0` disables the
    /// cache.
    pub level_cache: u32,
    /// Chunk-frame large codec streams so they (de)compress across
    /// cores. `false` reproduces the earlier monolithic streams — the
    /// restore benchmarks use it for their serial baseline.
    pub codec_chunking: bool,
    /// Bounded depth of the level-streaming write engine: how many
    /// decimated level jobs may sit between the decimation stage and the
    /// mapping/delta/compression worker pool (also the bound on each
    /// tier's write-behind queue). `0` selects the strictly serial
    /// refactor → compress → place path — the equivalence oracle the
    /// pipelined engine is tested against; both produce byte-identical
    /// tier contents and manifests.
    pub write_pipeline_depth: u32,
    /// Partition count of the decimation kernel. `1` runs the serial
    /// edge-collapse kernel; `> 1` decimates that many Morton (Z-order)
    /// regions concurrently with shared boundary vertices frozen and a
    /// deterministic stitch, so the output depends only on this count —
    /// never on how many threads happened to run.
    pub decimation_parts: u32,
    /// Retry budget for transient tier faults on the read path: capped
    /// exponential backoff with deterministic jitter. Under
    /// transient-only faults a restore that stays within this budget is
    /// byte-identical to the fault-free run.
    pub retry: RetryPolicy,
    /// Fault plan injected into every tier of the hierarchy an engine is
    /// built on ([`FaultPlan::none()`] — the default — injects nothing
    /// and costs nothing). Used by the reliability tests and the
    /// fault-injection benchmarks.
    pub fault: FaultPlan,
    /// Worker threads of the shared serving layer
    /// ([`CanopusService`](crate::serve::CanopusService)). `0` — the
    /// default — sizes the pool to the host's available parallelism,
    /// never below 2 so a dedicated quick-look lane always exists. With
    /// 2+ workers, worker 0 serves only `QuickLook` requests, which is
    /// what guarantees a cheap base read is never stuck behind a
    /// running full restore.
    pub serve_workers: u32,
    /// Bound on the serving layer's admission queue. `submit` blocks
    /// until a slot frees up (closed-loop backpressure), so a burst of
    /// clients cannot queue unbounded work. `0` is treated as `1`.
    pub serve_queue: u32,
    /// Close the paper's §IV-B loop: track per-key read heat and let a
    /// [`TierMigrator`](crate::tiering::TierMigrator) re-place objects
    /// across tiers from the observed workload (promote hot keys up,
    /// demote cold ones under capacity pressure). `false` — the default
    /// — keeps placement frozen at write time and skips all tracking.
    pub adaptive_tiering: bool,
    /// Watermarks / hysteresis / cadence of the adaptive tiering policy
    /// (ignored unless `adaptive_tiering` is set).
    pub tiering: TieringPolicy,
}

/// Retry budget for fault-class read failures (transient tier errors,
/// down tiers, checksum mismatches). Missing keys are *not* retried.
///
/// Backoff before retry `n` (1-based) is
/// `min(max_backoff_s, base_backoff_s * 2^(n-1))`, scaled by a
/// deterministic jitter in `[0.5, 1.0]` derived from
/// `(jitter_seed, block key, n)` — so a given run backs off identically
/// every time, but concurrent readers of different blocks don't
/// stampede in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total fetch attempts per block (`1` = no retries, `0` is treated
    /// as `1`).
    pub max_attempts: u32,
    /// Backoff before the first retry, in wall-clock seconds.
    pub base_backoff_s: f64,
    /// Cap on any single backoff sleep, in wall-clock seconds.
    pub max_backoff_s: f64,
    /// Seed of the deterministic jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Default budget: four attempts with sub-millisecond backoff —
    /// enough to ride out injected transients without slowing tests.
    pub const fn new() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_s: 2e-4,
            max_backoff_s: 2e-3,
            jitter_seed: 0,
        }
    }

    /// A policy that never retries (single attempt, no backoff).
    pub const fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_s: 0.0,
            max_backoff_s: 0.0,
            jitter_seed: 0,
        }
    }

    /// Seconds to sleep before retry number `retry` (1-based) of `key`.
    pub fn backoff_s(&self, key: &str, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(52);
        let raw = self.base_backoff_s * (1u64 << exp) as f64;
        let capped = raw.min(self.max_backoff_s);
        // splitmix64 over (seed, key, retry) -> jitter factor in [0.5, 1].
        let mut h = self.jitter_seed ^ 0x9E37_79B9_7F4A_7C15;
        for chunk in key.as_bytes().chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = splitmix64(h ^ u64::from_le_bytes(buf));
        }
        h = splitmix64(h ^ retry as u64);
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        capped * (0.5 + 0.5 * unit)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for CanopusConfig {
    fn default() -> Self {
        Self {
            refactor: RefactorConfig::default(),
            codec: RelativeCodec::ZfpLike {
                rel_tolerance: 1e-6,
            },
            policy: PlacementPolicy::RankSpread,
            delta_chunks: 1,
            spatial_chunking: false,
            pipeline_depth: 4,
            level_cache: 8,
            codec_chunking: true,
            write_pipeline_depth: 4,
            decimation_parts: 1,
            retry: RetryPolicy::new(),
            fault: FaultPlan::none(),
            serve_workers: 0,
            serve_queue: 64,
            adaptive_tiering: false,
            tiering: TieringPolicy::new(),
        }
    }
}

/// Codec choice with range-relative error bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelativeCodec {
    ZfpLike { rel_tolerance: f64 },
    SzLike { rel_error_bound: f64 },
    Fpc,
    Raw,
}

impl RelativeCodec {
    /// Resolve to an absolute-parameter codec for data spanning `range`.
    pub fn resolve(&self, range: f64) -> CodecKind {
        // Degenerate (constant) data still needs a positive bound.
        let range = if range > 0.0 { range } else { 1.0 };
        match *self {
            RelativeCodec::ZfpLike { rel_tolerance } => CodecKind::ZfpLike {
                tolerance: rel_tolerance * range,
            },
            RelativeCodec::SzLike { rel_error_bound } => CodecKind::SzLike {
                error_bound: rel_error_bound * range,
            },
            RelativeCodec::Fpc => CodecKind::Fpc,
            RelativeCodec::Raw => CodecKind::Raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_three_level_zfp() {
        let c = CanopusConfig::default();
        assert_eq!(c.refactor.num_levels, 3);
        assert!(matches!(c.codec, RelativeCodec::ZfpLike { .. }));
        assert_eq!(c.delta_chunks, 1, "unchunked by default");
        assert!(!c.spatial_chunking, "legacy layout by default");
        assert!(c.pipeline_depth > 0, "pipelined restore by default");
        assert!(c.level_cache > 0, "decoded-level cache on by default");
        assert!(c.codec_chunking, "chunk-framed codec streams by default");
        assert!(
            c.write_pipeline_depth > 0,
            "level-streaming write by default"
        );
        assert_eq!(c.decimation_parts, 1, "serial decimation kernel by default");
        assert!(c.fault.is_none(), "no fault injection by default");
        assert!(c.retry.max_attempts > 1, "read retries on by default");
        assert_eq!(c.serve_workers, 0, "serve pool auto-sized by default");
        assert!(c.serve_queue > 0, "bounded admission queue by default");
        assert!(!c.adaptive_tiering, "adaptive tiering opt-in, default off");
        assert_eq!(c.tiering, TieringPolicy::default());
    }

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_s: 1.0,
            max_backoff_s: 4.0,
            jitter_seed: 7,
        };
        // Deterministic: the same (key, retry) always backs off the same.
        assert_eq!(p.backoff_s("f/v/delta_0", 1), p.backoff_s("f/v/delta_0", 1));
        // Jittered within [0.5, 1.0] of the nominal value.
        let b1 = p.backoff_s("k", 1);
        assert!((0.5..=1.0).contains(&b1), "first backoff {b1}");
        // Exponential until the cap, never past it.
        let b4 = p.backoff_s("k", 4); // nominal 8.0 -> capped at 4.0
        assert!(b4 <= 4.0, "capped backoff {b4}");
        assert!(b4 >= 2.0, "cap * min jitter");
        // Different keys de-synchronize.
        assert_ne!(p.backoff_s("a", 2), p.backoff_s("b", 2));
        // No-retry policy sleeps zero.
        assert_eq!(RetryPolicy::no_retries().backoff_s("k", 1), 0.0);
    }

    #[test]
    fn relative_codec_scales_with_range() {
        let rc = RelativeCodec::ZfpLike {
            rel_tolerance: 1e-3,
        };
        match rc.resolve(100.0) {
            CodecKind::ZfpLike { tolerance } => assert!((tolerance - 0.1).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        // Constant data (range 0) still yields a positive tolerance.
        match rc.resolve(0.0) {
            CodecKind::ZfpLike { tolerance } => assert!(tolerance > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lossless_choices_pass_through() {
        assert_eq!(RelativeCodec::Fpc.resolve(5.0), CodecKind::Fpc);
        assert_eq!(RelativeCodec::Raw.resolve(5.0), CodecKind::Raw);
    }
}
