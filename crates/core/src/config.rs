//! Canopus pipeline configuration.

use canopus_compress::CodecKind;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::placement::PlacementPolicy;

/// End-to-end configuration: how to refactor, how to compress, how to
/// place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanopusConfig {
    /// Levels / ratio / estimator (paper §III-B/C).
    pub refactor: RefactorConfig,
    /// Codec for the base and deltas. The paper integrates ZFP; the
    /// tolerance here is *relative to the variable's value range* —
    /// each `write` multiplies it by `max - min` of the data, so one
    /// config works across variables of different scales.
    pub codec: RelativeCodec,
    /// Tier assignment policy (paper §III-D).
    pub policy: PlacementPolicy,
    /// Number of spatial chunks each delta is split into (1 = unchunked).
    /// Chunking enables the paper's focused data retrieval: a region of
    /// interest can be refined by fetching only the intersecting chunks
    /// ("reading smaller subsets of high accuracy data", §III-E/§IV-D).
    pub delta_chunks: u32,
    /// Bounded prefetch depth of the pipelined restore engine: how many
    /// fetched-but-undecoded blocks may sit between the tier-read stage
    /// and the parallel decode stage. `0` selects the strictly serial
    /// read → decode → restore path.
    pub pipeline_depth: u32,
    /// Capacity (in entries) of the decoded-level LRU cache each reader
    /// keeps, keyed by `(var, level)`. A repeat read of a cached level
    /// performs zero tier I/O and zero decompression. `0` disables the
    /// cache.
    pub level_cache: u32,
    /// Chunk-frame large codec streams so they (de)compress across
    /// cores. `false` reproduces the earlier monolithic streams — the
    /// restore benchmarks use it for their serial baseline.
    pub codec_chunking: bool,
    /// Bounded depth of the level-streaming write engine: how many
    /// decimated level jobs may sit between the decimation stage and the
    /// mapping/delta/compression worker pool (also the bound on each
    /// tier's write-behind queue). `0` selects the strictly serial
    /// refactor → compress → place path — the equivalence oracle the
    /// pipelined engine is tested against; both produce byte-identical
    /// tier contents and manifests.
    pub write_pipeline_depth: u32,
    /// Partition count of the decimation kernel. `1` runs the serial
    /// edge-collapse kernel; `> 1` decimates that many Morton (Z-order)
    /// regions concurrently with shared boundary vertices frozen and a
    /// deterministic stitch, so the output depends only on this count —
    /// never on how many threads happened to run.
    pub decimation_parts: u32,
}

impl Default for CanopusConfig {
    fn default() -> Self {
        Self {
            refactor: RefactorConfig::default(),
            codec: RelativeCodec::ZfpLike {
                rel_tolerance: 1e-6,
            },
            policy: PlacementPolicy::RankSpread,
            delta_chunks: 1,
            pipeline_depth: 4,
            level_cache: 8,
            codec_chunking: true,
            write_pipeline_depth: 4,
            decimation_parts: 1,
        }
    }
}

/// Codec choice with range-relative error bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelativeCodec {
    ZfpLike { rel_tolerance: f64 },
    SzLike { rel_error_bound: f64 },
    Fpc,
    Raw,
}

impl RelativeCodec {
    /// Resolve to an absolute-parameter codec for data spanning `range`.
    pub fn resolve(&self, range: f64) -> CodecKind {
        // Degenerate (constant) data still needs a positive bound.
        let range = if range > 0.0 { range } else { 1.0 };
        match *self {
            RelativeCodec::ZfpLike { rel_tolerance } => CodecKind::ZfpLike {
                tolerance: rel_tolerance * range,
            },
            RelativeCodec::SzLike { rel_error_bound } => CodecKind::SzLike {
                error_bound: rel_error_bound * range,
            },
            RelativeCodec::Fpc => CodecKind::Fpc,
            RelativeCodec::Raw => CodecKind::Raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_three_level_zfp() {
        let c = CanopusConfig::default();
        assert_eq!(c.refactor.num_levels, 3);
        assert!(matches!(c.codec, RelativeCodec::ZfpLike { .. }));
        assert_eq!(c.delta_chunks, 1, "unchunked by default");
        assert!(c.pipeline_depth > 0, "pipelined restore by default");
        assert!(c.level_cache > 0, "decoded-level cache on by default");
        assert!(c.codec_chunking, "chunk-framed codec streams by default");
        assert!(
            c.write_pipeline_depth > 0,
            "level-streaming write by default"
        );
        assert_eq!(c.decimation_parts, 1, "serial decimation kernel by default");
    }

    #[test]
    fn relative_codec_scales_with_range() {
        let rc = RelativeCodec::ZfpLike {
            rel_tolerance: 1e-3,
        };
        match rc.resolve(100.0) {
            CodecKind::ZfpLike { tolerance } => assert!((tolerance - 0.1).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        // Constant data (range 0) still yields a positive tolerance.
        match rc.resolve(0.0) {
            CodecKind::ZfpLike { tolerance } => assert!(tolerance > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lossless_choices_pass_through() {
        assert_eq!(RelativeCodec::Fpc.resolve(5.0), CodecKind::Fpc);
        assert_eq!(RelativeCodec::Raw.resolve(5.0), CodecKind::Raw);
    }
}
