//! Top-level error type.

use canopus_adios::AdiosError;
use canopus_compress::CodecError;
use canopus_storage::StorageError;

/// Anything that can go wrong in the Canopus pipeline.
#[derive(Debug)]
pub enum CanopusError {
    Storage(StorageError),
    Adios(AdiosError),
    Codec(CodecError),
    /// Mesh (de)serialization failure in the metadata payloads.
    MeshIo(String),
    /// Inconsistent inputs or metadata (e.g. unknown level).
    Invalid(String),
    /// The serving layer refused or abandoned the request because the
    /// service is shutting down (or its worker died). Not a fault:
    /// retrying on the same service cannot succeed.
    ServiceStopped,
}

impl std::fmt::Display for CanopusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanopusError::Storage(e) => write!(f, "storage: {e}"),
            CanopusError::Adios(e) => write!(f, "adios: {e}"),
            CanopusError::Codec(e) => write!(f, "codec: {e}"),
            CanopusError::MeshIo(m) => write!(f, "mesh io: {m}"),
            CanopusError::Invalid(m) => write!(f, "invalid: {m}"),
            CanopusError::ServiceStopped => write!(f, "service: stopped"),
        }
    }
}

impl CanopusError {
    /// Fault-class unavailability: transient tier errors, tiers inside a
    /// down window, and payload checksum mismatches — failures a retry
    /// may cure and graceful degradation may absorb. Missing keys or
    /// levels are **not** faults: the data was never there, so the read
    /// engine reports them as hard errors instead of retrying or
    /// silently degrading.
    pub fn is_availability_fault(&self) -> bool {
        match self {
            CanopusError::Storage(e) => e.is_fault(),
            CanopusError::Adios(AdiosError::Storage(e)) => e.is_fault(),
            CanopusError::Adios(AdiosError::ChecksumMismatch { .. }) => true,
            _ => false,
        }
    }

    /// Is this a block-integrity failure (manifest checksum vs payload)?
    pub fn is_checksum_mismatch(&self) -> bool {
        matches!(
            self,
            CanopusError::Adios(AdiosError::ChecksumMismatch { .. })
        )
    }
}

impl std::error::Error for CanopusError {}

impl From<StorageError> for CanopusError {
    fn from(e: StorageError) -> Self {
        CanopusError::Storage(e)
    }
}

impl From<AdiosError> for CanopusError {
    fn from(e: AdiosError) -> Self {
        CanopusError::Adios(e)
    }
}

impl From<CodecError> for CanopusError {
    fn from(e: CodecError) -> Self {
        CanopusError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CanopusError = StorageError::NotFound("k".into()).into();
        assert!(e.to_string().contains("storage"));
        let e: CanopusError = CodecError::Corrupt("x".into()).into();
        assert!(e.to_string().contains("codec"));
        let e = CanopusError::Invalid("level 9".into());
        assert!(e.to_string().contains("level 9"));
    }
}
