//! Progressive data exploration (paper §III-E, §IV-E).
//!
//! "Data retrieval starts from this lowest-accuracy base dataset, and if
//! the accuracy suffices, data retrieval concludes. Otherwise, data from
//! the next level of accuracy is restored … The process is repeated until
//! the data accuracy satisfies the user. Note this process can be
//! automated if the criteria to terminate (e.g., root mean square error
//! between two adjacent levels) is known a priori."

use crate::error::CanopusError;
use crate::read::{CanopusReader, PhaseTiming, ReadOutcome};
use canopus_mesh::TriMesh;
use canopus_obs::stage;

/// A stateful progressive-refinement session over one variable.
pub struct ProgressiveReader<'a> {
    reader: &'a CanopusReader,
    var: String,
    current: ReadOutcome,
    /// Cumulative timing across the base read and every refinement.
    cumulative: PhaseTiming,
    /// RMS of the last applied delta (None before the first refine).
    last_delta_rms: Option<f64>,
}

impl<'a> ProgressiveReader<'a> {
    /// Start at the base (coarsest) level.
    pub(crate) fn start(reader: &'a CanopusReader, var: &str) -> Result<Self, CanopusError> {
        let current = reader.read_base(var)?;
        Ok(Self {
            reader,
            var: var.to_string(),
            cumulative: current.timing,
            current,
            last_delta_rms: None,
        })
    }

    /// Current accuracy level (0 = full).
    pub fn level(&self) -> u32 {
        self.current.level
    }

    /// Decimation ratio placeholder: vertices at full accuracy divided by
    /// vertices now — callers with the original mesh size can compute the
    /// paper's `d`; here we expose the current vertex count.
    pub fn num_vertices(&self) -> usize {
        self.current.mesh.num_vertices()
    }

    pub fn mesh(&self) -> &TriMesh {
        &self.current.mesh
    }

    pub fn data(&self) -> &[f64] {
        &self.current.data
    }

    /// Timing of the most recent step only.
    pub fn last_timing(&self) -> PhaseTiming {
        self.current.timing
    }

    /// Cumulative timing since the base read.
    pub fn cumulative_timing(&self) -> PhaseTiming {
        self.cumulative
    }

    /// RMS of the last applied delta — the adjacent-level RMSE the paper
    /// proposes as an automated stop criterion.
    pub fn last_delta_rms(&self) -> Option<f64> {
        self.last_delta_rms
    }

    /// Whether full accuracy has been reached.
    pub fn at_full_accuracy(&self) -> bool {
        self.current.level == 0
    }

    /// Fetch the next delta and refine one level. Errors at full
    /// accuracy.
    pub fn refine(&mut self) -> Result<PhaseTiming, CanopusError> {
        let span = stage!(
            self.reader.metrics(),
            "restore",
            var = self.var.as_str(),
            level = self.current.level.saturating_sub(1),
        );
        let (next, rms) = self
            .reader
            .refine_once_ctx(&self.var, &self.current, span.context())?;
        let step = next.timing;
        self.cumulative += step;
        self.current = next;
        self.last_delta_rms = Some(rms);
        Ok(step)
    }

    /// Automated progressive retrieval: refine until the adjacent-level
    /// RMSE drops below `rms_threshold` or full accuracy is reached.
    /// Returns the number of refinement steps taken.
    pub fn refine_until(&mut self, rms_threshold: f64) -> Result<usize, CanopusError> {
        let mut steps = 0;
        while !self.at_full_accuracy() {
            self.refine()?;
            steps += 1;
            if self
                .last_delta_rms
                .expect("refine always sets the delta RMS")
                < rms_threshold
            {
                break;
            }
        }
        Ok(steps)
    }

    /// Consume the session, yielding the current outcome with cumulative
    /// timing.
    pub fn into_outcome(self) -> ReadOutcome {
        ReadOutcome {
            timing: self.cumulative,
            ..self.current
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::config::CanopusConfig;
    use crate::write::Canopus;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_refactor::levels::RefactorConfig;
    use canopus_storage::{StorageHierarchy, TierSpec};
    use std::sync::Arc;

    fn written_canopus(num_levels: u32) -> Canopus {
        let h = Arc::new(StorageHierarchy::new(vec![
            TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
            TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
        ]));
        let c = Canopus::new(
            h,
            CanopusConfig {
                refactor: RefactorConfig {
                    num_levels,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mesh = jitter_interior(
            &rectangle_mesh(
                20,
                20,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            4,
        );
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 10.0).sin() * (p.y * 3.0).cos())
            .collect();
        c.write("t.bp", "v", &mesh, &data).unwrap();
        c
    }

    #[test]
    fn walks_from_base_to_full() {
        let c = written_canopus(4);
        let reader = c.open("t.bp").unwrap();
        let mut p = reader.progressive("v").unwrap();
        assert_eq!(p.level(), 3);
        assert!(!p.at_full_accuracy());
        let mut sizes = vec![p.num_vertices()];
        while !p.at_full_accuracy() {
            p.refine().unwrap();
            sizes.push(p.num_vertices());
        }
        assert_eq!(p.level(), 0);
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "sizes grow: {sizes:?}"
        );
        assert!(p.refine().is_err(), "cannot refine past full accuracy");
    }

    #[test]
    fn cumulative_timing_grows_with_each_step() {
        let c = written_canopus(3);
        let reader = c.open("t.bp").unwrap();
        let mut p = reader.progressive("v").unwrap();
        let t0 = p.cumulative_timing().total();
        p.refine().unwrap();
        let t1 = p.cumulative_timing().total();
        p.refine().unwrap();
        let t2 = p.cumulative_timing().total();
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn rms_termination_stops_early_or_at_full() {
        let c = written_canopus(4);
        let reader = c.open("t.bp").unwrap();

        // A huge threshold stops after the first refinement.
        let mut p = reader.progressive("v").unwrap();
        let steps = p.refine_until(f64::INFINITY).unwrap();
        assert_eq!(steps, 1);

        // A zero threshold runs to full accuracy.
        let mut p = reader.progressive("v").unwrap();
        let steps = p.refine_until(0.0).unwrap();
        assert_eq!(steps, 3);
        assert!(p.at_full_accuracy());
    }

    #[test]
    fn into_outcome_carries_cumulative_timing() {
        let c = written_canopus(3);
        let reader = c.open("t.bp").unwrap();
        let mut p = reader.progressive("v").unwrap();
        p.refine().unwrap();
        let cum = p.cumulative_timing();
        let out = p.into_outcome();
        assert_eq!(out.timing, cum);
        assert_eq!(out.level, 1);
    }

    #[test]
    fn delta_rms_is_reported() {
        let c = written_canopus(3);
        let reader = c.open("t.bp").unwrap();
        let mut p = reader.progressive("v").unwrap();
        assert!(p.last_delta_rms().is_none());
        p.refine().unwrap();
        assert!(p.last_delta_rms().unwrap() > 0.0);
    }
}
