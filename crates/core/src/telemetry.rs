//! The live telemetry plane's scrape endpoint: a zero-dependency HTTP
//! server over `std::net::TcpListener`.
//!
//! The build environment cannot pull hyper/axum, and a scrape endpoint
//! needs almost nothing from HTTP anyway: parse a `GET` request line,
//! write one `Connection: close` response. [`TelemetryServer`] does
//! exactly that from a single accept thread, plus a sampler thread that
//! feeds a [`RollingWindow`] so windowed SLO numbers are available the
//! moment a scraper asks.
//!
//! ## Routes
//!
//! | path            | body                                              |
//! |-----------------|---------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (cumulative registry)  |
//! | `/metrics.json` | full [`MetricsSnapshot`] JSON round-trip document |
//! | `/healthz`      | queue depth, worker liveness, maintainer age      |
//! | `/slo`          | per-class deadline attainment, cumulative+window  |
//! | `/decisions`    | the tier migrator's decision audit ring           |
//! | `/`             | plain-text route index                            |
//!
//! ## Cost model
//!
//! The server never touches the serve hot path: every route reads the
//! shared [`Registry`] via `snapshot()` (a read-locked copy) or the
//! migrator's audit ring (its own mutex). The only in-service work the
//! live plane adds is gated inside `serve.rs` behind one relaxed atomic
//! load — see `disabled_live_plane_still_counts_deadlines_but_no_gauges`.
//!
//! [`MetricsSnapshot`]: canopus_obs::MetricsSnapshot

use crate::serve::Priority;
use crate::tiering::TierMigrator;
use canopus_obs::export::prometheus_text;
use canopus_obs::json::Value;
use canopus_obs::{names, HistogramStat, Registry, RollingWindow, WindowConfig};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the endpoint observes. Decoupled from [`CanopusService`]
/// so tests (and the CLI's offline `metrics` command) can serve a bare
/// registry; `CanopusService::telemetry_sources` fills in the rest.
///
/// [`CanopusService`]: crate::serve::CanopusService
pub struct TelemetrySources {
    registry: Arc<Registry>,
    /// Reads the deterministic sim clock, when the caller has one.
    sim_now: Option<Arc<dyn Fn() -> f64 + Send + Sync>>,
    /// The adaptive-tiering policy engine, for `/decisions`.
    migrator: Option<Arc<TierMigrator>>,
    /// Origin of `/healthz` uptime and the last-maintain beacon.
    epoch: Instant,
    /// Expected worker count (`None` when not serving a worker pool).
    workers: Option<usize>,
    queue_capacity: Option<usize>,
    maintains_tiers: bool,
}

impl TelemetrySources {
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            registry,
            sim_now: None,
            migrator: None,
            epoch: Instant::now(),
            workers: None,
            queue_capacity: None,
            maintains_tiers: false,
        }
    }

    /// Attach the deterministic sim clock (windowed rates can then be
    /// expressed against simulated seconds too).
    pub fn with_sim_clock(mut self, f: impl Fn() -> f64 + Send + Sync + 'static) -> Self {
        self.sim_now = Some(Arc::new(f));
        self
    }

    /// Attach the tier migrator whose audit ring `/decisions` serves.
    pub fn with_migrator(mut self, migrator: Arc<TierMigrator>) -> Self {
        self.migrator = Some(migrator);
        self
    }

    /// Re-anchor uptime to the service's start instant.
    pub fn with_epoch(mut self, epoch: Instant) -> Self {
        self.epoch = epoch;
        self
    }

    /// Declare the serving pool's shape so `/healthz` can compare the
    /// live `workers_alive` gauge against expectation.
    pub fn with_service_shape(
        mut self,
        workers: usize,
        queue_capacity: usize,
        maintains_tiers: bool,
    ) -> Self {
        self.workers = Some(workers);
        self.queue_capacity = Some(queue_capacity);
        self.maintains_tiers = maintains_tiers;
        self
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn sim_secs(&self) -> f64 {
        self.sim_now.as_ref().map(|f| f()).unwrap_or(0.0)
    }
}

/// Endpoint configuration.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Shape of the rolling SLO window backing `/slo`.
    pub window: WindowConfig,
    /// Sampler cadence (also bounds shutdown latency of the sampler).
    pub sample_interval: Duration,
}

impl TelemetryConfig {
    pub const fn new() -> Self {
        Self {
            window: WindowConfig::new(),
            sample_interval: Duration::from_millis(250),
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::new()
    }
}

struct State {
    sources: TelemetrySources,
    window: RollingWindow,
    span_hint: WindowConfig,
    scrapes: Arc<canopus_obs::Counter>,
}

impl State {
    /// File a fresh sample as the window's leading edge.
    fn sample(&self) {
        self.window
            .sample_now(&self.sources.registry, self.sources.sim_secs());
    }
}

/// The running endpoint: one accept thread, one sampler thread. Stops
/// (and joins both) on [`stop`](TelemetryServer::stop) or drop.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sampler_stop: Arc<(Mutex<bool>, Condvar)>,
    accept: Option<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    state: Arc<State>,
}

impl TelemetryServer {
    /// Bind `listen` (e.g. `127.0.0.1:9090`, or port `0` for an
    /// ephemeral port — see [`addr`](TelemetryServer::addr)) and start
    /// serving. The window is primed with one immediate sample so early
    /// scrapes see a leading edge instead of an empty window.
    pub fn start(
        listen: &str,
        sources: TelemetrySources,
        cfg: TelemetryConfig,
    ) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let scrapes = sources.registry.counter(names::TELEMETRY_SCRAPES);
        let state = Arc::new(State {
            window: RollingWindow::new(cfg.window),
            span_hint: cfg.window,
            sources,
            scrapes,
        });
        state.sample();

        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("canopus-telemetry".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        if let Ok(stream) = conn {
                            // One slow or broken scraper must not take
                            // the endpoint down; errors only drop the
                            // connection.
                            let _ = serve_connection(stream, &state);
                        }
                    }
                })
                .expect("spawn telemetry accept thread")
        };

        let sampler_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let sampler = {
            let state = Arc::clone(&state);
            let flag = Arc::clone(&sampler_stop);
            let interval = cfg.sample_interval.max(Duration::from_millis(1));
            std::thread::Builder::new()
                .name("canopus-telemetry-sampler".into())
                .spawn(move || {
                    let (lock, cv) = &*flag;
                    let mut stopped = lock.lock().unwrap();
                    loop {
                        let (guard, _) = cv.wait_timeout(stopped, interval).unwrap();
                        stopped = guard;
                        if *stopped {
                            return;
                        }
                        state.sample();
                    }
                })
                .expect("spawn telemetry sampler thread")
        };

        Ok(TelemetryServer {
            addr,
            stop,
            sampler_stop,
            accept: Some(accept),
            sampler: Some(sampler),
            state,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` of the running endpoint.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The rolling window backing `/slo` (tests drive it directly).
    pub fn window(&self) -> &RollingWindow {
        &self.state.window
    }

    /// Take a window sample right now (in addition to the sampler's
    /// cadence).
    pub fn sample_now(&self) {
        self.state.sample();
    }

    /// Scrape requests served so far (any route).
    pub fn scrapes(&self) -> u64 {
        self.state.scrapes.get()
    }

    /// Stop accepting, stop sampling, and join both threads. Idempotent.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        {
            let (lock, cv) = &*self.sampler_stop;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        // `accept` blocks in the listener; a throwaway connection to
        // ourselves wakes it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// request handling
// ---------------------------------------------------------------------

/// Read one request, write one response, close.
fn serve_connection(stream: TcpStream, state: &State) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain (but ignore) headers so well-behaved clients aren't reset
    // mid-send; stop at the blank line or a sanity bound.
    for _ in 0..100 {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Scrapers sometimes append query strings; route on the path alone.
    let route = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "application/json",
            Value::Obj(BTreeMap::from([(
                "error".to_string(),
                Value::Str("only GET is supported".to_string()),
            )]))
            .to_pretty(),
        )
    } else {
        state.scrapes.inc();
        match route {
            "/" => ("200 OK", "text/plain; charset=utf-8", index_text()),
            "/metrics" => (
                "200 OK",
                // The Prometheus text exposition format version.
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(&state.sources.registry.snapshot()),
            ),
            "/metrics.json" => (
                "200 OK",
                "application/json",
                state.sources.registry.snapshot().to_json_string(),
            ),
            "/healthz" => ("200 OK", "application/json", healthz(state).to_pretty()),
            "/slo" => ("200 OK", "application/json", slo(state).to_pretty()),
            "/decisions" => ("200 OK", "application/json", decisions(state).to_pretty()),
            _ => (
                "404 Not Found",
                "application/json",
                Value::Obj(BTreeMap::from([
                    ("error".to_string(), Value::Str(format!("no route {route}"))),
                    (
                        "routes".to_string(),
                        Value::Arr(ROUTES.iter().map(|r| Value::Str(r.to_string())).collect()),
                    ),
                ]))
                .to_pretty(),
            ),
        }
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

const ROUTES: &[&str] = &[
    "/metrics",
    "/metrics.json",
    "/healthz",
    "/slo",
    "/decisions",
];

fn index_text() -> String {
    let mut s = String::from("canopus telemetry endpoint\n\nroutes:\n");
    for r in ROUTES {
        s.push_str("  ");
        s.push_str(r);
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------
// route bodies
// ---------------------------------------------------------------------

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// `/healthz`: is the service alive, keeping up, and maintaining tiers?
fn healthz(state: &State) -> Value {
    let snap = state.sources.registry.snapshot();
    let uptime_ms = state.sources.epoch.elapsed().as_millis() as i64;
    let alive = snap.gauge(names::SERVE_WORKERS_ALIVE);
    // The maintainer stamps ms-since-epoch after every tick; its age is
    // the staleness signal. 0 means it has not completed a tick yet.
    let last_maintain = snap.gauge(names::SERVE_LAST_MAINTAIN_MILLIS);
    let maintain_age = if state.sources.maintains_tiers && last_maintain > 0 {
        Value::Int((uptime_ms - last_maintain).max(0) as i128)
    } else {
        Value::Null
    };
    let status = match state.sources.workers {
        // A pool was declared but every worker has exited: degraded.
        Some(w) if w > 0 && alive <= 0 => "degraded",
        _ => "ok",
    };
    obj(vec![
        ("status", Value::Str(status.to_string())),
        ("uptime_ms", Value::Int(uptime_ms as i128)),
        (
            "queue_depth",
            Value::Int(snap.gauge(names::SERVE_QUEUE_DEPTH) as i128),
        ),
        (
            "queue_capacity",
            state
                .sources
                .queue_capacity
                .map(|c| Value::Int(c as i128))
                .unwrap_or(Value::Null),
        ),
        (
            "inflight",
            Value::Int(snap.gauge(names::SERVE_INFLIGHT) as i128),
        ),
        ("workers_alive", Value::Int(alive as i128)),
        (
            "workers_expected",
            state
                .sources
                .workers
                .map(|w| Value::Int(w as i128))
                .unwrap_or(Value::Null),
        ),
        (
            "tier_maintainer",
            Value::Bool(state.sources.maintains_tiers),
        ),
        ("last_maintain_age_ms", maintain_age),
    ])
}

fn quantiles(h: &HistogramStat) -> Value {
    obj(vec![
        ("count", Value::Int(h.count as i128)),
        ("p50_s", Value::Float(h.p50_secs())),
        ("p99_s", Value::Float(h.p99_secs())),
        ("max_s", Value::Float(h.max_secs())),
    ])
}

/// One class's SLO block from any snapshot-shaped source.
fn class_slo(
    class: &str,
    counter: &dyn Fn(&str) -> u64,
    histogram: &dyn Fn(&str) -> HistogramStat,
) -> Value {
    let hits = counter(&names::serve_deadline_hit(class));
    let misses = counter(&names::serve_deadline_miss(class));
    obj(vec![
        (
            "completed",
            Value::Int(counter(&names::serve_completed(class)) as i128),
        ),
        ("deadline_hits", Value::Int(hits as i128)),
        ("deadline_misses", Value::Int(misses as i128)),
        (
            "attainment_ppm",
            Value::Int(crate::serve::attainment_ppm(hits, misses) as i128),
        ),
        (
            "queue_wait",
            quantiles(&histogram(&names::serve_queue_wait_hist(class))),
        ),
        (
            "latency",
            quantiles(&histogram(&names::serve_latency_hist(class))),
        ),
    ])
}

/// `/slo`: per-class deadline attainment and latency quantiles, both
/// cumulative-since-start and over the rolling window.
fn slo(state: &State) -> Value {
    // Refresh the leading edge so the window always includes work done
    // right up to this scrape (not just the sampler's last pass).
    state.sample();
    let snap = state.sources.registry.snapshot();
    let delta = state.window.delta();

    let classes = [Priority::QuickLook, Priority::FullAccuracy];
    let mut cumulative = BTreeMap::new();
    let mut windowed = BTreeMap::new();
    for p in classes {
        let class = p.class();
        cumulative.insert(
            class.to_string(),
            class_slo(class, &|n| snap.counter(n), &|n| snap.histogram(n)),
        );
        if let Some(d) = &delta {
            windowed.insert(
                class.to_string(),
                class_slo(class, &|n| d.count(n), &|n| d.histogram(n)),
            );
        }
    }

    let mut deadlines = BTreeMap::new();
    for p in classes {
        deadlines.insert(
            p.class().to_string(),
            Value::Float(p.default_deadline().as_secs_f64()),
        );
    }

    obj(vec![
        ("deadline_budget_s", Value::Obj(deadlines)),
        ("cumulative", Value::Obj(cumulative)),
        (
            "window",
            obj(vec![
                ("span_secs_max", Value::Float(state.span_hint.span_secs())),
                (
                    "wall_secs",
                    delta
                        .as_ref()
                        .map(|d| Value::Float(d.wall_secs))
                        .unwrap_or(Value::Null),
                ),
                (
                    "sim_secs",
                    delta
                        .as_ref()
                        .map(|d| Value::Float(d.sim_secs))
                        .unwrap_or(Value::Null),
                ),
                ("classes", Value::Obj(windowed)),
            ]),
        ),
    ])
}

/// `/decisions`: the tier migrator's audit ring (or an explicit
/// "not running" document when the service has no migrator).
fn decisions(state: &State) -> Value {
    match &state.sources.migrator {
        Some(m) => {
            let mut doc = match m.decision_ring().to_json() {
                Value::Obj(obj) => obj,
                other => BTreeMap::from([("decisions".to_string(), other)]),
            };
            doc.insert("available".to_string(), Value::Bool(true));
            doc.insert("ticks".to_string(), Value::Int(m.ticks() as i128));
            Value::Obj(doc)
        }
        None => obj(vec![
            ("available", Value::Bool(false)),
            ("decisions", Value::Arr(Vec::new())),
            ("capacity", Value::Int(0)),
            ("recorded", Value::Int(0)),
            ("evicted", Value::Int(0)),
            ("ticks", Value::Int(0)),
        ]),
    }
}

// ---------------------------------------------------------------------
// a tiny scrape client (tests + `canopus serve` shutdown summary)
// ---------------------------------------------------------------------

/// Blocking one-shot `GET` against a running endpoint; returns
/// `(status_code, body)`. Deliberately minimal — test and CLI helper,
/// not a general HTTP client.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut line = String::new();
    while reader.read_line(&mut line)? > 0 {
        if line == "\r\n" || line == "\n" {
            break;
        }
        line.clear();
    }
    let mut body = String::new();
    io::Read::read_to_string(&mut reader, &mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_obs::json;

    fn bare_sources() -> TelemetrySources {
        let reg = Arc::new(Registry::new());
        reg.counter("canopus.test.events").add(7);
        TelemetrySources::new(reg).with_sim_clock(|| 1.5)
    }

    fn start(sources: TelemetrySources) -> TelemetryServer {
        TelemetryServer::start("127.0.0.1:0", sources, TelemetryConfig::default()).unwrap()
    }

    #[test]
    fn serves_all_routes_on_an_ephemeral_port() {
        let server = start(bare_sources());
        let addr = server.addr();
        let t = Duration::from_secs(5);

        let (status, body) = http_get(addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("canopus_test_events 7"),
            "prometheus text: {body}"
        );

        let (status, body) = http_get(addr, "/metrics.json", t).unwrap();
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("canopus.test.events"))
                .and_then(Value::as_u64),
            Some(7)
        );

        let (status, body) = http_get(addr, "/healthz", t).unwrap();
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(doc.get("workers_expected"), Some(&Value::Null));

        let (status, body) = http_get(addr, "/slo", t).unwrap();
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert!(doc.get("cumulative").and_then(|c| c.get("quick")).is_some());

        let (status, body) = http_get(addr, "/decisions", t).unwrap();
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("available").and_then(Value::as_bool), Some(false));

        let (status, _) = http_get(addr, "/nope", t).unwrap();
        assert_eq!(status, 404);
        assert_eq!(server.scrapes(), 6, "every GET counted, including the 404");
    }

    #[test]
    fn stop_is_prompt_and_idempotent() {
        let mut server = start(bare_sources());
        let addr = server.addr();
        let begun = Instant::now();
        server.stop();
        server.stop();
        assert!(begun.elapsed() < Duration::from_secs(5));
        assert!(
            http_get(addr, "/metrics", Duration::from_millis(300)).is_err(),
            "stopped endpoint no longer answers"
        );
    }

    #[test]
    fn slo_scrape_includes_work_done_this_instant() {
        let reg = Arc::new(Registry::new());
        let server = start(TelemetrySources::new(Arc::clone(&reg)));
        // Record between sampler passes; the handler's own leading-edge
        // sample must still pick it up.
        reg.counter(&names::serve_deadline_miss("quick")).add(3);
        let (_, body) = http_get(server.addr(), "/slo", Duration::from_secs(5)).unwrap();
        let doc = json::parse(&body).unwrap();
        assert_eq!(
            doc.get("cumulative")
                .and_then(|c| c.get("quick"))
                .and_then(|q| q.get("deadline_misses"))
                .and_then(Value::as_u64),
            Some(3)
        );
        // The windowed view exists and is itself a per-class object.
        assert!(doc
            .get("window")
            .and_then(|w| w.get("classes"))
            .and_then(|c| c.get("quick"))
            .is_some());
    }
}
