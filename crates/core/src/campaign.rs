//! Multi-timestep campaigns.
//!
//! The paper's target workload is a *campaign*: "applications in which
//! the simulation results need to be written once but analyzed a number
//! of times", with XGC1 emitting one output per timestep over a fixed
//! mesh hierarchy. `Campaign` wraps the per-file pipeline with timestep
//! naming, enumeration, and ADIOS-style query pushdown across steps —
//! analytics can ask "which timesteps can possibly contain a value above
//! this threshold?" from metadata alone, then read only those.

use crate::error::CanopusError;
use crate::read::CanopusReader;
use crate::write::{Canopus, WriteReport};
use canopus_mesh::TriMesh;

/// A named sequence of timesteps over one Canopus instance.
///
/// ```
/// use canopus::{Campaign, Canopus, CanopusConfig};
/// use canopus_storage::StorageHierarchy;
/// use std::sync::Arc;
///
/// let canopus = Canopus::new(
///     Arc::new(StorageHierarchy::titan_two_tier(1 << 16, 1 << 24)),
///     CanopusConfig::default(),
/// );
/// let campaign = Campaign::new(&canopus, "run");
///
/// let ds = canopus_data::xgc1_dataset_sized(8, 40, 1);
/// campaign.write_step(0, "dpot", &ds.mesh, &ds.data).unwrap();
/// campaign.write_step(1, "dpot", &ds.mesh, &ds.data).unwrap();
/// assert_eq!(campaign.steps(), vec![0, 1]);
///
/// // Which steps might exceed a threshold? Metadata only — no data I/O.
/// let hot = campaign
///     .steps_possibly_in_range("dpot", 1e9, f64::INFINITY)
///     .unwrap();
/// assert!(hot.is_empty());
/// ```
pub struct Campaign<'a> {
    canopus: &'a Canopus,
    name: String,
}

impl<'a> Campaign<'a> {
    pub fn new(canopus: &'a Canopus, name: impl Into<String>) -> Self {
        Self {
            canopus,
            name: name.into(),
        }
    }

    /// BP file name of one timestep.
    pub fn file_of(&self, step: u64) -> String {
        format!("{}.{step:06}.bp", self.name)
    }

    /// Refactor + place one timestep of `var`.
    pub fn write_step(
        &self,
        step: u64,
        var: &str,
        mesh: &TriMesh,
        data: &[f64],
    ) -> Result<WriteReport, CanopusError> {
        let report = self.canopus.write(&self.file_of(step), var, mesh, data)?;
        self.canopus
            .metrics()
            .counter(canopus_obs::names::CAMPAIGN_WRITES)
            .inc();
        Ok(report)
    }

    /// Open one timestep for reading.
    pub fn open_step(&self, step: u64) -> Result<CanopusReader, CanopusError> {
        self.canopus.open(&self.file_of(step))
    }

    /// Enumerate stored timesteps by scanning tier metadata objects
    /// (sorted ascending).
    pub fn steps(&self) -> Vec<u64> {
        let prefix = format!("{}.", self.name);
        let suffix = ".bp/.bpmeta";
        let hierarchy = self.canopus.hierarchy();
        let mut steps = Vec::new();
        for tier in 0..hierarchy.num_tiers() {
            let Ok(device) = hierarchy.tier_device(tier) else {
                continue;
            };
            for key in device.keys() {
                if let Some(rest) = key.strip_prefix(&prefix) {
                    if let Some(step_str) = rest.strip_suffix(suffix) {
                        if let Ok(step) = step_str.parse::<u64>() {
                            steps.push(step);
                        }
                    }
                }
            }
        }
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Query pushdown across the campaign: the timesteps whose `var`
    /// *may* contain a value in `[lo, hi]` at full accuracy, decided from
    /// metadata alone. Steps excluded here definitively cannot.
    pub fn steps_possibly_in_range(
        &self,
        var: &str,
        lo: f64,
        hi: f64,
    ) -> Result<Vec<u64>, CanopusError> {
        let obs = self.canopus.metrics();
        obs.counter(canopus_obs::names::CAMPAIGN_QUERIES).inc();
        let t = std::time::Instant::now();
        let mut hits = Vec::new();
        for step in self.steps() {
            let reader = self.open_step(step)?;
            if reader.query_range(var, 0, lo, hi)? {
                hits.push(step);
            }
        }
        obs.timer(canopus_obs::names::CAMPAIGN_QUERY_TIMER)
            .record_wall(t.elapsed().as_secs_f64());
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CanopusConfig, RelativeCodec};
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_storage::StorageHierarchy;
    use std::sync::Arc;

    fn setup() -> (Canopus, TriMesh) {
        let h = Arc::new(StorageHierarchy::titan_two_tier(1 << 18, 1 << 26));
        let c = Canopus::new(
            h,
            CanopusConfig {
                codec: RelativeCodec::Raw,
                ..Default::default()
            },
        );
        let mesh = jitter_interior(
            &rectangle_mesh(
                10,
                10,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            1,
        );
        (c, mesh)
    }

    /// A field whose amplitude grows with the step (like a developing
    /// instability).
    fn field(mesh: &TriMesh, step: u64) -> Vec<f64> {
        mesh.points()
            .iter()
            .map(|p| (step as f64) * ((p.x * 7.0).sin() + (p.y * 5.0).cos()))
            .collect()
    }

    #[test]
    fn write_enumerate_read() {
        let (c, mesh) = setup();
        let campaign = Campaign::new(&c, "run1");
        for step in [0u64, 5, 10] {
            campaign
                .write_step(step, "u", &mesh, &field(&mesh, step))
                .unwrap();
        }
        assert_eq!(campaign.steps(), vec![0, 5, 10]);
        let reader = campaign.open_step(5).unwrap();
        let out = reader.read_level("u", 0).unwrap();
        let expect = field(&mesh, 5);
        let max_err = out
            .data
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "restoration rounding only, got {max_err}");
    }

    #[test]
    fn two_campaigns_do_not_mix() {
        let (c, mesh) = setup();
        let a = Campaign::new(&c, "runA");
        let b = Campaign::new(&c, "runB");
        a.write_step(1, "u", &mesh, &field(&mesh, 1)).unwrap();
        b.write_step(2, "u", &mesh, &field(&mesh, 2)).unwrap();
        assert_eq!(a.steps(), vec![1]);
        assert_eq!(b.steps(), vec![2]);
    }

    #[test]
    fn query_pushdown_skips_low_amplitude_steps() {
        let (c, mesh) = setup();
        let campaign = Campaign::new(&c, "amp");
        for step in 1..=4u64 {
            campaign
                .write_step(step, "u", &mesh, &field(&mesh, step))
                .unwrap();
        }
        // field max ≈ step * ~1.9; threshold 5 excludes steps 1 and 2.
        let hits = campaign
            .steps_possibly_in_range("u", 5.0, f64::INFINITY)
            .unwrap();
        assert!(!hits.contains(&1), "step 1 cannot reach 5: {hits:?}");
        assert!(hits.contains(&4), "step 4 certainly can: {hits:?}");
        // Never-false-negative: every hit-excluded step truly stays under.
        for step in campaign.steps() {
            if !hits.contains(&step) {
                let max = field(&mesh, step)
                    .into_iter()
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(max < 5.0, "step {step} was wrongly excluded (max {max})");
            }
        }
    }

    #[test]
    fn value_bounds_are_conservative_but_useful() {
        let (c, mesh) = setup();
        let campaign = Campaign::new(&c, "bounds");
        let data = field(&mesh, 3);
        campaign.write_step(7, "u", &mesh, &data).unwrap();
        let reader = campaign.open_step(7).unwrap();
        let (lo, hi) = reader.value_bounds("u", 0).unwrap();
        let (dmin, dmax) = data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        assert!(
            lo <= dmin && hi >= dmax,
            "bounds [{lo},{hi}] vs data [{dmin},{dmax}]"
        );
        // And not absurdly loose (within 3x the data range on each side).
        let range = dmax - dmin;
        assert!(dmin - lo <= 2.0 * range, "lower bound too loose");
        assert!(hi - dmax <= 2.0 * range, "upper bound too loose");
    }

    #[test]
    fn empty_campaign_has_no_steps() {
        let (c, _) = setup();
        let campaign = Campaign::new(&c, "nothing");
        assert!(campaign.steps().is_empty());
        assert!(campaign
            .steps_possibly_in_range("u", 0.0, 1.0)
            .unwrap()
            .is_empty());
    }
}
