//! Workload-adaptive tier placement (closing the paper's §IV-B loop).
//!
//! Canopus §IV-B concedes that "data migration and eviction will play an
//! integral part, which needs to be developed". The storage crate
//! provides the primitives (fault-safe [`StorageHierarchy::migrate`],
//! LRU [`make_room`](StorageHierarchy::make_room), an EWMA
//! [`AccessTracker`](canopus_storage::AccessTracker)); this module
//! provides the *policy* that drives them from the observed workload,
//! in the spirit of ScaleStore's dynamic DRAM/NVMe residency decisions:
//!
//! * **Demotion under capacity pressure only.** A tier above its high
//!   watermark demotes its coldest objects downward until it drops to
//!   the low watermark. Tiers below the high watermark are never
//!   touched — placement stays sticky when there is no pressure.
//! * **Promotion with hysteresis.** An object is promoted toward tier 0
//!   only once it has accumulated `promote_hits` accesses, and only
//!   into *headroom* (the destination stays at or below its high
//!   watermark). When no faster tier has headroom, a **swap** displaces
//!   resident objects — but only those whose heat is at least
//!   `swap_margin`× colder than the candidate, so two objects of equal
//!   heat can never displace each other back and forth (no ping-pong).
//! * **Cooldown.** A key moved in the last `cooldown_ticks` maintenance
//!   ticks is frozen: it is neither promoted, demoted, nor displaced.
//! * **Bounded work.** One [`TierMigrator::maintain`] tick performs at
//!   most `max_moves_per_tick` migrations, so a tick's cost is bounded
//!   regardless of backlog; the next tick continues where it stopped.
//!
//! Everything is driven by the tracker's *logical* access clock and the
//! hierarchy's [`SimClock`](canopus_storage::SimClock) — `maintain` is
//! deterministic for a given access sequence and safe to call from
//! tests, benchmarks, or the background worker in
//! [`CanopusService`](crate::serve::CanopusService).

use canopus_obs::json::Value;
use canopus_obs::names;
use canopus_storage::{HeatEntry, SimDuration, StorageHierarchy};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of the adaptive tiering policy. All fields have conservative
/// defaults; the zero-cost way to disable the subsystem entirely is
/// `CanopusConfig::adaptive_tiering = false` (the default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieringPolicy {
    /// Accesses a key must accumulate before it is promotion-eligible.
    pub promote_hits: u64,
    /// Occupancy fraction above which a tier demotes (capacity
    /// pressure) and at or below which promotions may land.
    pub high_watermark: f64,
    /// Occupancy fraction a pressured tier demotes down to.
    pub low_watermark: f64,
    /// Maintenance ticks a just-moved key is frozen for.
    pub cooldown_ticks: u64,
    /// Migration budget of one `maintain` tick.
    pub max_moves_per_tick: u32,
    /// Sleep between background `maintain` ticks in
    /// [`CanopusService`](crate::serve::CanopusService), milliseconds.
    pub interval_ms: u64,
    /// A promotion candidate may displace a resident object only if
    /// `candidate_heat >= resident_heat * swap_margin`. Values > 1 give
    /// hysteresis: equally hot objects never swap places.
    pub swap_margin: f64,
    /// Capacity of the decision audit ring: how many recent
    /// [`TierDecision`]s are retained for `/decisions` and the serve
    /// shutdown summary. `0` disables recording entirely.
    pub audit_ring: u32,
}

impl TieringPolicy {
    pub const fn new() -> Self {
        Self {
            promote_hits: 3,
            high_watermark: 0.90,
            low_watermark: 0.70,
            cooldown_ticks: 4,
            max_moves_per_tick: 8,
            interval_ms: 25,
            swap_margin: 2.0,
            audit_ring: 256,
        }
    }
}

impl Default for TieringPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// What one [`TierMigrator::maintain`] tick did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MaintainReport {
    /// Objects moved to a faster tier.
    pub promotions: u32,
    /// Objects moved to a slower tier (pressure demotions + swap
    /// displacements).
    pub demotions: u32,
    pub bytes_promoted: u64,
    pub bytes_demoted: u64,
    /// Moves the policy wanted but skipped (cooldown, no room below,
    /// or a faulted migration that left the source intact).
    pub skipped: u32,
    /// Simulated time the migrations cost.
    pub time: SimDuration,
}

impl MaintainReport {
    /// Total objects moved this tick.
    pub fn moves(&self) -> u32 {
        self.promotions + self.demotions
    }
}

/// What the migrator did — or declined to do — to one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierActionKind {
    /// Moved to a faster tier (into headroom, or as the final step of a
    /// swap).
    Promote,
    /// Moved to a slower tier under capacity pressure.
    Demote,
    /// Demoted to make room for a hotter promotion candidate.
    SwapDemote,
    /// A move the policy wanted but did not perform; `reason` says why.
    Skip,
}

impl TierActionKind {
    pub const fn as_str(self) -> &'static str {
        match self {
            TierActionKind::Promote => "promote",
            TierActionKind::Demote => "demote",
            TierActionKind::SwapDemote => "swap_demote",
            TierActionKind::Skip => "skip",
        }
    }
}

/// One structured entry of the tiering audit trail: what happened to a
/// key during a maintain tick, and *why* — the explainable form of the
/// `canopus.tier.*` counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TierDecision {
    /// Maintain tick (1-based) that produced the decision.
    pub tick: u64,
    pub action: TierActionKind,
    /// Object key the decision is about.
    pub key: String,
    /// Tier the key resided on when the decision was made.
    pub from_tier: Option<usize>,
    /// Destination tier of a performed move (`None` for skips).
    pub to_tier: Option<usize>,
    /// EWMA heat of the key at decision time.
    pub heat: f64,
    /// Occupancy fraction (used/capacity) of the tier driving the
    /// decision — the source under pressure, or the promotion target.
    pub occupancy: f64,
    /// Human-readable explanation (watermark state, cooldown tick,
    /// displacement cause, fault, ...).
    pub reason: String,
}

impl TierDecision {
    pub fn to_json(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("tick".to_string(), Value::Int(self.tick as i128));
        obj.insert(
            "action".to_string(),
            Value::Str(self.action.as_str().to_string()),
        );
        obj.insert("key".to_string(), Value::Str(self.key.clone()));
        let tier = |t: Option<usize>| match t {
            Some(t) => Value::Int(t as i128),
            None => Value::Null,
        };
        obj.insert("from_tier".to_string(), tier(self.from_tier));
        obj.insert("to_tier".to_string(), tier(self.to_tier));
        obj.insert("heat".to_string(), Value::Float(self.heat));
        obj.insert("occupancy".to_string(), Value::Float(self.occupancy));
        obj.insert("reason".to_string(), Value::Str(self.reason.clone()));
        Value::Obj(obj)
    }
}

/// Bounded ring of recent [`TierDecision`]s. Eviction drops the oldest
/// entry and counts it, so consumers can tell a quiet migrator from a
/// truncated view.
#[derive(Debug)]
pub struct DecisionRing {
    capacity: usize,
    ring: Mutex<VecDeque<TierDecision>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl DecisionRing {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn push(&self, decision: TierDecision) {
        if self.capacity == 0 {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        while ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(decision);
    }

    /// Retained decisions, oldest first.
    pub fn snapshot(&self) -> Vec<TierDecision> {
        self.ring.lock().iter().cloned().collect()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Decisions ever recorded (including since-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Decisions dropped to capacity: nonzero means `snapshot` is a
    /// truncated view.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// JSON document for `/decisions`: the entries plus ring totals.
    pub fn to_json(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert(
            "decisions".to_string(),
            Value::Arr(self.snapshot().iter().map(TierDecision::to_json).collect()),
        );
        obj.insert("capacity".to_string(), Value::Int(self.capacity as i128));
        obj.insert("recorded".to_string(), Value::Int(self.recorded() as i128));
        obj.insert("evicted".to_string(), Value::Int(self.evicted() as i128));
        Value::Obj(obj)
    }
}

/// The policy engine: owns the tick counter and per-key cooldown state,
/// borrows the hierarchy's tracker. Create one per hierarchy; `maintain`
/// takes `&self` and is safe to call concurrently with readers (the
/// read path tolerates a key mid-flight between tiers).
pub struct TierMigrator {
    hierarchy: Arc<StorageHierarchy>,
    policy: TieringPolicy,
    tick: AtomicU64,
    last_moved: Mutex<HashMap<String, u64>>,
    decisions: DecisionRing,
}

impl TierMigrator {
    /// Build a migrator and enable access tracking on the hierarchy so
    /// subsequent reads feed the heat model.
    pub fn new(hierarchy: Arc<StorageHierarchy>, policy: TieringPolicy) -> Self {
        hierarchy.enable_access_tracking();
        Self {
            hierarchy,
            policy,
            tick: AtomicU64::new(0),
            last_moved: Mutex::new(HashMap::new()),
            decisions: DecisionRing::new(policy.audit_ring as usize),
        }
    }

    pub fn policy(&self) -> &TieringPolicy {
        &self.policy
    }

    /// Maintenance ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// The audit trail: every action and skip, with its reason.
    pub fn decision_ring(&self) -> &DecisionRing {
        &self.decisions
    }

    /// Retained audit entries, oldest first.
    pub fn decisions(&self) -> Vec<TierDecision> {
        self.decisions.snapshot()
    }

    fn record(&self, decision: TierDecision) {
        if self.decisions.capacity() == 0 {
            return;
        }
        self.hierarchy
            .metrics()
            .counter(names::TIER_DECISIONS)
            .inc();
        self.decisions.push(decision);
    }

    /// Occupancy fraction of `tier` right now (0 for unknown tiers).
    fn occupancy(&self, tier: usize) -> f64 {
        match self.hierarchy.tier_device(tier) {
            Ok(d) => d.used() as f64 / d.capacity().max(1) as f64,
            Err(_) => 0.0,
        }
    }

    /// One deterministic maintenance tick: demote pressured tiers, then
    /// promote hot eligible keys, within this tick's move budget.
    pub fn maintain(&self) -> MaintainReport {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let obs = Arc::clone(self.hierarchy.metrics());
        obs.counter(names::TIER_MAINTAIN_TICKS).inc();

        let entries = self.hierarchy.access_tracker().entries();
        let mut heat: HashMap<&str, f64> = HashMap::with_capacity(entries.len());
        let mut total_heat = 0.0;
        for e in &entries {
            heat.insert(e.key.as_str(), e.heat);
            total_heat += e.heat;
        }
        obs.gauge(names::TIER_HEAT).set(total_heat.round() as i64);
        obs.gauge(names::TIER_TRACKED_KEYS)
            .set(entries.len() as i64);

        let mut report = MaintainReport::default();
        self.demote_pressured(tick, &heat, &mut report);
        self.promote_hot(tick, &entries, &heat, &mut report);

        if report.promotions > 0 {
            obs.counter(names::TIER_PROMOTIONS)
                .add(report.promotions as u64);
        }
        if report.demotions > 0 {
            obs.counter(names::TIER_DEMOTIONS)
                .add(report.demotions as u64);
        }
        if report.skipped > 0 {
            obs.counter(names::TIER_MOVE_SKIPS)
                .add(report.skipped as u64);
        }
        self.prune_cooldowns(tick);
        report
    }

    /// Phase 1: every tier above its high watermark demotes its coldest
    /// unfrozen objects to the first lower tier with room until it
    /// reaches the low watermark (or the move budget runs out).
    fn demote_pressured(&self, tick: u64, heat: &HashMap<&str, f64>, report: &mut MaintainReport) {
        let h = &self.hierarchy;
        let tracker = h.access_tracker();
        for tier in 0..h.num_tiers().saturating_sub(1) {
            let Ok(device) = h.tier_device(tier) else {
                continue;
            };
            let capacity = device.capacity().max(1) as f64;
            if device.used() as f64 / capacity <= self.policy.high_watermark {
                continue;
            }
            let target_used = (self.policy.low_watermark * capacity) as u64;
            // Coldest first; never-read keys (heat 0) lead, ties broken
            // by recency then key for determinism.
            let mut victims: Vec<String> = device.keys();
            victims.sort_by(|a, b| {
                let ha = heat.get(a.as_str()).copied().unwrap_or(0.0);
                let hb = heat.get(b.as_str()).copied().unwrap_or(0.0);
                ha.total_cmp(&hb)
                    .then_with(|| tracker.last_access(a).cmp(&tracker.last_access(b)))
                    .then_with(|| a.cmp(b))
            });
            for victim in victims {
                if device.used() <= target_used {
                    break;
                }
                if report.moves() >= self.policy.max_moves_per_tick {
                    return;
                }
                let vheat = heat.get(victim.as_str()).copied().unwrap_or(0.0);
                let occupancy = self.occupancy(tier);
                if self.in_cooldown(&victim, tick) {
                    report.skipped += 1;
                    self.record(TierDecision {
                        tick,
                        action: TierActionKind::Skip,
                        key: victim.clone(),
                        from_tier: Some(tier),
                        to_tier: None,
                        heat: vheat,
                        occupancy,
                        reason: format!(
                            "cooldown: frozen for {} more tick(s)",
                            self.cooldown_remaining(&victim, tick)
                        ),
                    });
                    continue;
                }
                match self.demote_to_lower(&victim, tier) {
                    Ok((lower, size, dt)) => {
                        report.demotions += 1;
                        report.bytes_demoted += size;
                        report.time += dt;
                        self.mark_moved(&victim, tick);
                        self.record(TierDecision {
                            tick,
                            action: TierActionKind::Demote,
                            key: victim.clone(),
                            from_tier: Some(tier),
                            to_tier: Some(lower),
                            heat: vheat,
                            occupancy,
                            reason: format!(
                                "capacity pressure: occupancy {:.2} > high watermark {:.2}, coldest first",
                                occupancy, self.policy.high_watermark
                            ),
                        });
                    }
                    Err(why) => {
                        report.skipped += 1;
                        self.record(TierDecision {
                            tick,
                            action: TierActionKind::Skip,
                            key: victim.clone(),
                            from_tier: Some(tier),
                            to_tier: None,
                            heat: vheat,
                            occupancy,
                            reason: format!("demotion wanted (pressure) but {why}"),
                        });
                    }
                }
            }
        }
    }

    /// Phase 2: hottest promotion-eligible keys move up — into headroom
    /// when a faster tier has it, else by displacing sufficiently colder
    /// residents (the swap path).
    fn promote_hot(
        &self,
        tick: u64,
        entries: &[HeatEntry],
        heat: &HashMap<&str, f64>,
        report: &mut MaintainReport,
    ) {
        let h = &self.hierarchy;
        let mut candidates: Vec<&HeatEntry> = entries
            .iter()
            .filter(|e| e.hits >= self.policy.promote_hits)
            .collect();
        // Hottest first, key-tiebroken for determinism.
        candidates.sort_by(|a, b| b.heat.total_cmp(&a.heat).then_with(|| a.key.cmp(&b.key)));

        for cand in candidates {
            if report.moves() >= self.policy.max_moves_per_tick {
                return;
            }
            // Tracked keys may have been deleted, or already be on the
            // fastest tier.
            let Ok(current) = h.find(&cand.key) else {
                continue;
            };
            if current == 0 {
                continue;
            }
            if self.in_cooldown(&cand.key, tick) {
                report.skipped += 1;
                self.record(TierDecision {
                    tick,
                    action: TierActionKind::Skip,
                    key: cand.key.clone(),
                    from_tier: Some(current),
                    to_tier: None,
                    heat: cand.heat,
                    occupancy: self.occupancy(current),
                    reason: format!(
                        "promotion-eligible ({} hits) but cooldown: frozen for {} more tick(s)",
                        cand.hits,
                        self.cooldown_remaining(&cand.key, tick)
                    ),
                });
                continue;
            }
            let Ok(size) = h.tier_device(current).and_then(|d| d.size_of(&cand.key)) else {
                continue;
            };
            let mut promoted = false;
            for target in 0..current {
                if self.has_headroom(target, size) {
                    let reason = format!(
                        "hot key ({} hits) promoted into tier {target} headroom (occupancy {:.2} <= high watermark {:.2})",
                        cand.hits,
                        self.occupancy(target),
                        self.policy.high_watermark
                    );
                    promoted = self.promote_into(cand, current, target, size, reason, report, tick);
                    break;
                }
                if self.swap_into(cand, current, target, size, heat, report, tick) {
                    promoted = true;
                    break;
                }
            }
            if !promoted {
                report.skipped += 1;
                self.record(TierDecision {
                    tick,
                    action: TierActionKind::Skip,
                    key: cand.key.clone(),
                    from_tier: Some(current),
                    to_tier: None,
                    heat: cand.heat,
                    occupancy: self.occupancy(current),
                    reason: format!(
                        "promotion-eligible ({} hits) but no faster tier has headroom or residents >= {:.1}x colder to displace",
                        cand.hits, self.policy.swap_margin
                    ),
                });
            }
        }
    }

    /// Destination has room for `size` without crossing its high
    /// watermark.
    fn has_headroom(&self, tier: usize, size: u64) -> bool {
        let Ok(device) = self.hierarchy.tier_device(tier) else {
            return false;
        };
        let cap = device.capacity();
        device.available() >= size
            && (device.used() + size) as f64 <= self.policy.high_watermark * cap as f64
    }

    #[allow(clippy::too_many_arguments)]
    fn promote_into(
        &self,
        cand: &HeatEntry,
        current: usize,
        target: usize,
        size: u64,
        reason: String,
        report: &mut MaintainReport,
        tick: u64,
    ) -> bool {
        let occupancy = self.occupancy(target);
        match self.hierarchy.migrate(&cand.key, target) {
            Ok(dt) => {
                report.promotions += 1;
                report.bytes_promoted += size;
                report.time += dt;
                self.mark_moved(&cand.key, tick);
                self.record(TierDecision {
                    tick,
                    action: TierActionKind::Promote,
                    key: cand.key.clone(),
                    from_tier: Some(current),
                    to_tier: Some(target),
                    heat: cand.heat,
                    occupancy,
                    reason,
                });
                true
            }
            Err(_) => {
                // migrate's guarantee: the source copy survived.
                report.skipped += 1;
                self.record(TierDecision {
                    tick,
                    action: TierActionKind::Skip,
                    key: cand.key.clone(),
                    from_tier: Some(current),
                    to_tier: Some(target),
                    heat: cand.heat,
                    occupancy,
                    reason: "promotion wanted but the migration faulted (source kept)".to_string(),
                });
                false
            }
        }
    }

    /// Displace residents of `target` that are at least `swap_margin`×
    /// colder than the candidate (and unfrozen), then promote the
    /// candidate into the space. Returns false without moving anything
    /// when the displaceable set cannot make enough room.
    #[allow(clippy::too_many_arguments)]
    fn swap_into(
        &self,
        cand: &HeatEntry,
        current: usize,
        target: usize,
        size: u64,
        heat: &HashMap<&str, f64>,
        report: &mut MaintainReport,
        tick: u64,
    ) -> bool {
        let h = &self.hierarchy;
        let Ok(device) = h.tier_device(target) else {
            return false;
        };
        if device.capacity() < size {
            return false;
        }
        // The swap must create real *headroom*: after displacement the
        // tier holds `used - displaced + size` and still sits at or
        // below the high watermark — swaps never bypass the watermark,
        // they clear space under it.
        let allowed = (self.policy.high_watermark * device.capacity() as f64) as u64;
        let needed = (device.used() + size).saturating_sub(allowed);
        if needed == 0 {
            // Capacity-fit without displacement (racing writes freed
            // space since the headroom check); just promote.
            let reason = format!(
                "hot key ({} hits) promoted into tier {target} (space freed since the headroom check)",
                cand.hits
            );
            return self.promote_into(cand, current, target, size, reason, report, tick);
        }
        let tracker = h.access_tracker();
        // Coldest displaceable residents first.
        let mut residents: Vec<String> = device
            .keys()
            .into_iter()
            .filter(|k| {
                let rh = heat.get(k.as_str()).copied().unwrap_or(0.0);
                !self.in_cooldown(k, tick) && cand.heat >= rh * self.policy.swap_margin
            })
            .collect();
        residents.sort_by(|a, b| {
            let ha = heat.get(a.as_str()).copied().unwrap_or(0.0);
            let hb = heat.get(b.as_str()).copied().unwrap_or(0.0);
            ha.total_cmp(&hb)
                .then_with(|| tracker.last_access(a).cmp(&tracker.last_access(b)))
                .then_with(|| a.cmp(b))
        });
        // Dry-run: can the displaceable set free enough within budget?
        let budget = self
            .policy
            .max_moves_per_tick
            .saturating_sub(report.moves() + 1); // +1 reserves the promotion itself
        let mut displaced = 0u64;
        let mut plan: Vec<String> = Vec::new();
        for k in residents {
            if displaced >= needed || plan.len() as u32 >= budget {
                break;
            }
            // A victim only counts if some lower tier can absorb it
            // right now — otherwise its demotion would fail and strand
            // the swap halfway through the plan.
            let Ok(ksize) = device.size_of(&k) else {
                continue;
            };
            if self.lower_tier_with_room(target, ksize).is_none() {
                continue;
            }
            displaced += ksize;
            plan.push(k);
        }
        if displaced < needed {
            return false;
        }
        for victim in plan {
            let vheat = heat.get(victim.as_str()).copied().unwrap_or(0.0);
            let occupancy = self.occupancy(target);
            match self.demote_to_lower(&victim, target) {
                Ok((lower, vsize, dt)) => {
                    report.demotions += 1;
                    report.bytes_demoted += vsize;
                    report.time += dt;
                    self.mark_moved(&victim, tick);
                    self.record(TierDecision {
                        tick,
                        action: TierActionKind::SwapDemote,
                        key: victim.clone(),
                        from_tier: Some(target),
                        to_tier: Some(lower),
                        heat: vheat,
                        occupancy,
                        reason: format!(
                            "displaced by hotter candidate '{}' (heat {:.2} vs {:.2}, swap margin {:.1}x)",
                            cand.key, cand.heat, vheat, self.policy.swap_margin
                        ),
                    });
                }
                Err(why) => {
                    // Displacement faulted; abort the swap, nothing lost.
                    report.skipped += 1;
                    self.record(TierDecision {
                        tick,
                        action: TierActionKind::Skip,
                        key: victim.clone(),
                        from_tier: Some(target),
                        to_tier: None,
                        heat: vheat,
                        occupancy,
                        reason: format!(
                            "swap for '{}' aborted: displacement of this resident failed — {why}",
                            cand.key
                        ),
                    });
                    return false;
                }
            }
        }
        let reason = format!(
            "hot key ({} hits) swapped into tier {target} after displacing colder resident(s)",
            cand.hits
        );
        self.promote_into(cand, current, target, size, reason, report, tick)
    }

    /// First tier below `tier` that can hold `size` bytes right now.
    fn lower_tier_with_room(&self, tier: usize, size: u64) -> Option<usize> {
        (tier + 1..self.hierarchy.num_tiers()).find(|&lower| {
            match self.hierarchy.tier_device(lower) {
                Ok(d) => d.available() >= size,
                Err(_) => false,
            }
        })
    }

    /// Demote `key` off `tier` to the first lower tier with room.
    /// Returns the destination tier and move cost, or the reason the
    /// demotion could not happen.
    fn demote_to_lower(
        &self,
        key: &str,
        tier: usize,
    ) -> Result<(usize, u64, SimDuration), &'static str> {
        let size = self
            .hierarchy
            .tier_device(tier)
            .ok()
            .and_then(|d| d.size_of(key).ok())
            .ok_or("the key vanished from its tier")?;
        let lower = self
            .lower_tier_with_room(tier, size)
            .ok_or("no lower tier has room")?;
        match self.hierarchy.migrate(key, lower) {
            Ok(dt) => Ok((lower, size, dt)),
            Err(_) => Err("the migration faulted (source kept)"),
        }
    }

    fn in_cooldown(&self, key: &str, tick: u64) -> bool {
        self.cooldown_remaining(key, tick) > 0
    }

    /// Ticks left before `key` thaws (0 = not frozen).
    fn cooldown_remaining(&self, key: &str, tick: u64) -> u64 {
        self.last_moved.lock().get(key).map_or(0, |&moved| {
            self.policy
                .cooldown_ticks
                .saturating_sub(tick.saturating_sub(moved))
        })
    }

    fn mark_moved(&self, key: &str, tick: u64) {
        self.last_moved.lock().insert(key.to_string(), tick);
    }

    /// Drop cooldown records that can no longer freeze anything.
    fn prune_cooldowns(&self, tick: u64) {
        let horizon = self.policy.cooldown_ticks;
        self.last_moved
            .lock()
            .retain(|_, &mut moved| tick.saturating_sub(moved) < horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use canopus_storage::TierSpec;

    fn two_tier(fast: u64, slow: u64) -> Arc<StorageHierarchy> {
        Arc::new(StorageHierarchy::new(vec![
            TierSpec::new("fast", fast, 1000.0, 1000.0, 0.0),
            TierSpec::new("slow", slow, 10.0, 10.0, 0.0),
        ]))
    }

    #[test]
    fn default_policy_is_conservative() {
        let p = TieringPolicy::default();
        assert_eq!(p.promote_hits, 3);
        assert!(p.high_watermark > p.low_watermark);
        assert!(p.swap_margin > 1.0, "margin > 1 is what kills ping-pong");
        assert!(p.cooldown_ticks > 0);
        assert!(p.max_moves_per_tick > 0);
    }

    #[test]
    fn hot_keys_promote_into_headroom() {
        let h = two_tier(1000, 10_000);
        let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
        for i in 0..4 {
            h.write_to_tier(1, &format!("k{i}"), Bytes::from(vec![0u8; 100]))
                .unwrap();
        }
        // k0 crosses the promote_hits bar; the others stay cold.
        for _ in 0..5 {
            h.read("k0").unwrap();
        }
        let r = m.maintain();
        assert_eq!(r.promotions, 1, "only the hot key moves: {r:?}");
        assert_eq!(r.bytes_promoted, 100);
        assert_eq!(h.find("k0").unwrap(), 0);
        for i in 1..4 {
            assert_eq!(h.find(&format!("k{i}")).unwrap(), 1, "cold keys stay");
        }
        let snap = h.metrics().snapshot();
        assert_eq!(snap.counter(names::TIER_PROMOTIONS), 1);
        assert!(snap.counter(names::TIER_MAINTAIN_TICKS) >= 1);
    }

    #[test]
    fn cold_keys_never_promote() {
        let h = two_tier(1000, 10_000);
        let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
        h.write_to_tier(1, "once", Bytes::from(vec![0u8; 50]))
            .unwrap();
        h.read("once").unwrap(); // 1 hit < promote_hits
        let r = m.maintain();
        assert_eq!(r.promotions, 0);
        assert_eq!(h.find("once").unwrap(), 1);
    }

    #[test]
    fn pressure_demotes_coldest_down_to_low_watermark() {
        let h = two_tier(1000, 10_000);
        let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
        // 95% occupancy on the fast tier: over the 0.90 high watermark.
        for i in 0..19 {
            h.write_to_tier(0, &format!("k{i:02}"), Bytes::from(vec![0u8; 50]))
                .unwrap();
        }
        // Heat everything except the two coldest.
        for i in 2..19 {
            for _ in 0..3 {
                h.read(&format!("k{i:02}")).unwrap();
            }
        }
        let r = m.maintain();
        assert!(r.demotions > 0, "pressure must demote: {r:?}");
        assert!(
            h.tier_device(0).unwrap().used() as f64 <= 0.70 * 1000.0,
            "drains to the low watermark"
        );
        // The never-read keys went first.
        assert_eq!(h.find("k00").unwrap(), 1);
        assert_eq!(h.find("k01").unwrap(), 1);
    }

    #[test]
    fn no_pressure_means_no_demotions() {
        let h = two_tier(1000, 10_000);
        let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
        for i in 0..5 {
            h.write_to_tier(0, &format!("k{i}"), Bytes::from(vec![0u8; 100]))
                .unwrap();
        }
        let r = m.maintain();
        assert_eq!(r.demotions, 0, "50% occupancy is not pressure");
        assert_eq!(r.promotions, 0);
    }

    #[test]
    fn swap_displaces_only_much_colder_residents() {
        // Fast tier sitting exactly at the high watermark (900/1000, no
        // pressure, no headroom): a promotion can only land by
        // displacing a resident, and only a margin-colder one.
        let h = two_tier(1000, 10_000);
        let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
        for i in 0..9 {
            h.write_to_tier(0, &format!("res{i}"), Bytes::from(vec![0u8; 100]))
                .unwrap();
        }
        h.write_to_tier(1, "rival", Bytes::from(vec![0u8; 100]))
            .unwrap();
        // Comparable heat everywhere: swap_margin forbids displacement.
        for _ in 0..4 {
            for i in 0..9 {
                h.read(&format!("res{i}")).unwrap();
            }
            h.read("rival").unwrap();
        }
        let r = m.maintain();
        assert_eq!(r.promotions, 0, "equal heat must not swap: {r:?}");
        assert_eq!(r.demotions, 0, "no pressure, no demotions: {r:?}");
        assert_eq!(h.find("rival").unwrap(), 1);
        // Now make the rival decisively hotter than the residents.
        for _ in 0..40 {
            h.read("rival").unwrap();
        }
        let r = m.maintain();
        assert_eq!(r.promotions, 1, "2x hotter rival swaps in: {r:?}");
        assert_eq!(r.demotions, 1, "exactly one resident displaced: {r:?}");
        assert_eq!(h.find("rival").unwrap(), 0);
        // The watermark still holds after the swap.
        assert!(h.tier_device(0).unwrap().used() <= 900);
    }

    #[test]
    fn cooldown_freezes_recently_moved_keys() {
        let h = two_tier(100, 10_000);
        let policy = TieringPolicy {
            cooldown_ticks: 10,
            ..TieringPolicy::default()
        };
        let m = TierMigrator::new(Arc::clone(&h), policy);
        h.write_to_tier(1, "k", Bytes::from(vec![0u8; 50])).unwrap();
        for _ in 0..5 {
            h.read("k").unwrap();
        }
        assert_eq!(m.maintain().promotions, 1);
        assert_eq!(h.find("k").unwrap(), 0);
        // Pressure the tier with a *hotter* newcomer: the coldest key is
        // now the frozen "k", which must be skipped, so the pressure
        // falls through to the next victim.
        h.write_to_tier(0, "fill", Bytes::from(vec![0u8; 45]))
            .unwrap(); // 95% full
        for _ in 0..8 {
            h.read("fill").unwrap();
        }
        let r = m.maintain();
        assert_eq!(h.find("k").unwrap(), 0, "cooldown pins the new arrival");
        assert_eq!(
            h.find("fill").unwrap(),
            1,
            "pressure demoted the next victim"
        );
        assert!(r.skipped > 0, "the frozen candidate is counted: {r:?}");
    }

    #[test]
    fn move_budget_bounds_one_tick() {
        let h = two_tier(1000, 10_000);
        let policy = TieringPolicy {
            max_moves_per_tick: 2,
            ..TieringPolicy::default()
        };
        let m = TierMigrator::new(Arc::clone(&h), policy);
        for i in 0..10 {
            let key = format!("k{i}");
            h.write_to_tier(1, &key, Bytes::from(vec![0u8; 10]))
                .unwrap();
            for _ in 0..5 {
                h.read(&key).unwrap();
            }
        }
        let r = m.maintain();
        assert_eq!(r.moves(), 2, "budget caps the tick: {r:?}");
        let r = m.maintain();
        assert_eq!(r.moves(), 2, "the next tick continues");
    }

    #[test]
    fn every_action_and_skip_is_audited_with_a_reason() {
        let h = two_tier(1000, 10_000);
        let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
        // Pressure the fast tier and heat a slow-tier rival so one tick
        // produces demotions, a promotion, and (cooldown) skips later.
        for i in 0..19 {
            h.write_to_tier(0, &format!("k{i:02}"), Bytes::from(vec![0u8; 50]))
                .unwrap();
        }
        h.write_to_tier(1, "rival", Bytes::from(vec![0u8; 40]))
            .unwrap();
        for i in 2..19 {
            for _ in 0..3 {
                h.read(&format!("k{i:02}")).unwrap();
            }
        }
        for _ in 0..60 {
            h.read("rival").unwrap();
        }
        let r1 = m.maintain();
        let r2 = m.maintain();
        let decisions = m.decisions();
        let moves = decisions
            .iter()
            .filter(|d| d.action != TierActionKind::Skip)
            .count() as u32;
        let skips = decisions
            .iter()
            .filter(|d| d.action == TierActionKind::Skip)
            .count() as u32;
        assert!(r1.moves() + r1.skipped > 0, "the setup must exercise both");
        assert_eq!(
            moves,
            r1.moves() + r2.moves(),
            "every performed move is audited: {decisions:#?}"
        );
        assert_eq!(
            skips,
            r1.skipped + r2.skipped,
            "every skip is audited: {decisions:#?}"
        );
        for d in &decisions {
            assert!(!d.reason.is_empty(), "no silent decisions: {d:?}");
            assert!(!d.key.is_empty());
            assert!(d.tick >= 1 && d.tick <= 2);
            assert!(d.from_tier.is_some(), "context names the source tier");
            if d.action != TierActionKind::Skip {
                assert!(d.to_tier.is_some(), "moves name their destination: {d:?}");
            }
            // Round-trips into the JSON the /decisions endpoint serves.
            let j = d.to_json();
            assert_eq!(
                j.get("action").and_then(|v| v.as_str()),
                Some(d.action.as_str())
            );
            assert!(j.get("reason").is_some());
        }
        let snap = h.metrics().snapshot();
        assert_eq!(
            snap.counter(names::TIER_DECISIONS),
            m.decision_ring().recorded(),
            "counter and ring agree"
        );
    }

    #[test]
    fn audit_ring_is_bounded_and_counts_eviction() {
        let h = two_tier(1000, 10_000);
        let policy = TieringPolicy {
            audit_ring: 4,
            cooldown_ticks: 1_000, // every later touch becomes a skip
            ..TieringPolicy::default()
        };
        let m = TierMigrator::new(Arc::clone(&h), policy);
        for i in 0..10 {
            let key = format!("k{i}");
            h.write_to_tier(1, &key, Bytes::from(vec![0u8; 10]))
                .unwrap();
            for _ in 0..5 {
                h.read(&key).unwrap();
            }
        }
        for _ in 0..5 {
            m.maintain();
        }
        let ring = m.decision_ring();
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.len(), 4, "ring holds exactly its capacity");
        assert!(ring.recorded() > 4, "more decisions than capacity happened");
        assert_eq!(
            ring.evicted(),
            ring.recorded() - 4,
            "eviction is accounted, not silent"
        );
        // Oldest-first ordering: ticks never decrease across the ring.
        let decisions = ring.snapshot();
        assert!(decisions.windows(2).all(|w| w[0].tick <= w[1].tick));
        // A zero-capacity ring disables recording entirely.
        let off = TierMigrator::new(
            two_tier(1000, 10_000),
            TieringPolicy {
                audit_ring: 0,
                ..TieringPolicy::default()
            },
        );
        off.maintain();
        assert!(off.decision_ring().is_empty());
        assert_eq!(off.decision_ring().recorded(), 0);
    }

    #[test]
    fn maintain_is_deterministic_for_a_given_sequence() {
        let run = || {
            let h = two_tier(300, 10_000);
            let m = TierMigrator::new(Arc::clone(&h), TieringPolicy::default());
            for i in 0..8 {
                h.write_to_tier(1, &format!("k{i}"), Bytes::from(vec![0u8; 60]))
                    .unwrap();
            }
            for _ in 0..6 {
                h.read("k3").unwrap();
                h.read("k5").unwrap();
            }
            let r1 = m.maintain();
            let r2 = m.maintain();
            let placement: Vec<usize> = (0..8).map(|i| h.find(&format!("k{i}")).unwrap()).collect();
            (r1, r2, placement)
        };
        assert_eq!(run(), run());
    }
}
