//! Decoded-level LRU cache.
//!
//! Campaign analytics revisit levels: blob detection runs at several
//! accuracies, a coarse exploratory pass precedes a focused refinement,
//! dashboards re-render the same variable. [`LevelCache`] keeps the last
//! few fully restored `(var, level)` fields in memory so a repeat read
//! skips tier I/O *and* decompression entirely — the reader answers from
//! the cache with zero `read.bytes_io` traffic.
//!
//! Entries share their mesh and data through `Arc`s, so a hit clones two
//! pointers; the deep copy happens only when the caller materialises a
//! [`ReadOutcome`](crate::read::ReadOutcome). Only level-exact fields are
//! cached — mixed-accuracy results from region refinement never enter.
//!
//! Retention is bounded twice over: by entry count (the configured
//! capacity) and by approximate resident bytes
//! ([`LevelCache::DEFAULT_MAX_BYTES`] unless overridden), so caching the
//! fine levels of a large variable cannot pin unbounded memory. Eviction
//! is LRU-first under either bound; the most recently inserted entry is
//! always retained — even alone over the byte budget — so a repeat read
//! of the same `(var, level)` still answers from memory.

use canopus_mesh::TriMesh;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One cached restored level.
#[derive(Clone)]
pub(crate) struct CachedLevel {
    pub mesh: Arc<TriMesh>,
    pub data: Arc<Vec<f64>>,
    /// RMS of the delta applied to reach this level (0 for the base),
    /// so a cache-served refinement can still report the paper's
    /// adjacent-level RMSE termination criterion.
    pub delta_rms: f64,
}

impl CachedLevel {
    /// Approximate resident size: the vertex field plus the mesh's
    /// point and connectivity arrays.
    fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
            + self.mesh.num_vertices() * std::mem::size_of::<canopus_mesh::geometry::Point2>()
            + self.mesh.num_triangles() * std::mem::size_of::<[canopus_mesh::VertexId; 3]>()
    }
}

struct Entry {
    value: CachedLevel,
    last_used: u64,
    bytes: usize,
}

struct Inner {
    map: HashMap<(String, u32), Entry>,
    tick: u64,
    /// Sum of `Entry::bytes` over `map`.
    bytes: usize,
}

/// A small LRU of decoded levels, keyed by `(var, level)`, bounded by
/// entry count and approximate bytes.
pub(crate) struct LevelCache {
    capacity: usize,
    max_bytes: usize,
    inner: Mutex<Inner>,
}

impl LevelCache {
    /// Default byte budget: generous for the paper's meshes (a 130k-
    /// triangle level is a few MB) while capping the worst case of
    /// `capacity` fine levels of a large variable.
    pub const DEFAULT_MAX_BYTES: usize = 256 << 20;

    /// `capacity` = max retained entries; 0 disables the cache entirely.
    /// The byte budget defaults to [`Self::DEFAULT_MAX_BYTES`].
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            max_bytes: Self::DEFAULT_MAX_BYTES,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
        }
    }

    /// Override the approximate-byte budget (entry capacity still
    /// applies).
    pub fn set_max_bytes(&mut self, max_bytes: usize) {
        self.max_bytes = max_bytes;
    }

    /// The configured approximate-byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    #[cfg(test)]
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Look up an exact `(var, level)` entry, refreshing its recency.
    pub fn get(&self, var: &str, level: u32) -> Option<CachedLevel> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&(var.to_string(), level))?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// The finest cached level of `var` strictly coarser than `finer_than`
    /// (i.e. in `finer_than + 1 ..= coarsest`) — the best starting point
    /// for a walk down to `finer_than`.
    pub fn nearest_coarser(
        &self,
        var: &str,
        finer_than: u32,
        coarsest: u32,
    ) -> Option<(u32, CachedLevel)> {
        if !self.enabled() {
            return None;
        }
        for level in finer_than + 1..=coarsest {
            if let Some(hit) = self.get(var, level) {
                return Some((level, hit));
            }
        }
        None
    }

    /// Insert (or refresh) an entry, evicting least-recently-used ones
    /// while over the entry capacity or the byte budget. The entry just
    /// inserted is never evicted, so one oversized level degrades to a
    /// single-entry cache instead of thrashing.
    pub fn insert(&self, var: &str, level: u32, value: CachedLevel) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = value.approx_bytes();
        if let Some(old) = inner.map.insert(
            (var.to_string(), level),
            Entry {
                value,
                last_used: tick,
                bytes,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.map.len() > self.capacity
            || (inner.bytes > self.max_bytes && inner.map.len() > 1)
        {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over a bound");
            let evicted = inner.map.remove(&oldest).expect("oldest key present");
            inner.bytes -= evicted.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::generators::rectangle_mesh;
    use canopus_mesh::geometry::{Aabb, Point2};

    fn level(v: f64) -> CachedLevel {
        let mesh = rectangle_mesh(
            2,
            2,
            Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
        );
        CachedLevel {
            mesh: Arc::new(mesh),
            data: Arc::new(vec![v; 4]),
            delta_rms: v,
        }
    }

    /// A level with `n` data values, for byte-bound tests.
    fn sized_level(n: usize) -> CachedLevel {
        let mesh = rectangle_mesh(
            2,
            2,
            Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
        );
        CachedLevel {
            mesh: Arc::new(mesh),
            data: Arc::new(vec![0.0; n]),
            delta_rms: 0.0,
        }
    }

    #[test]
    fn get_insert_roundtrip() {
        let c = LevelCache::new(4);
        assert!(c.get("v", 0).is_none());
        c.insert("v", 0, level(1.0));
        let hit = c.get("v", 0).unwrap();
        assert_eq!(*hit.data, vec![1.0; 4]);
        assert!(c.get("w", 0).is_none(), "keys include the variable");
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = LevelCache::new(2);
        c.insert("v", 0, level(0.0));
        c.insert("v", 1, level(1.0));
        c.get("v", 0); // refresh 0 → 1 is now the LRU entry
        c.insert("v", 2, level(2.0));
        assert_eq!(c.len(), 2);
        assert!(c.get("v", 0).is_some());
        assert!(c.get("v", 1).is_none(), "LRU entry evicted");
        assert!(c.get("v", 2).is_some());
    }

    #[test]
    fn byte_budget_evicts_lru_and_tracks_residency() {
        let mut c = LevelCache::new(16);
        // Room for two ~8 KiB fields, not three.
        c.set_max_bytes(20 << 10);
        c.insert("v", 0, sized_level(1024));
        c.insert("v", 1, sized_level(1024));
        assert_eq!(c.len(), 2);
        c.get("v", 0); // 1 becomes the LRU entry
        c.insert("v", 2, sized_level(1024));
        assert_eq!(c.len(), 2, "byte budget holds two entries");
        assert!(c.get("v", 0).is_some());
        assert!(c.get("v", 1).is_none(), "LRU entry evicted on bytes");
        assert!(c.get("v", 2).is_some());
        assert!(c.resident_bytes() <= 20 << 10);
    }

    #[test]
    fn oversized_entry_is_retained_alone() {
        let mut c = LevelCache::new(4);
        c.set_max_bytes(1 << 10);
        c.insert("v", 0, sized_level(64));
        c.insert("v", 1, sized_level(4096)); // alone exceeds the budget
        assert_eq!(c.len(), 1, "everything else evicted");
        assert!(
            c.get("v", 1).is_some(),
            "the newest entry survives its own insert"
        );
    }

    #[test]
    fn reinsert_replaces_byte_accounting() {
        let mut c = LevelCache::new(4);
        c.set_max_bytes(1 << 20);
        c.insert("v", 0, sized_level(1024));
        let first = c.resident_bytes();
        c.insert("v", 0, sized_level(2048));
        assert!(c.resident_bytes() > first);
        c.insert("v", 0, sized_level(1024));
        assert_eq!(c.resident_bytes(), first, "replaced entry fully released");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn nearest_coarser_prefers_finest() {
        let c = LevelCache::new(4);
        c.insert("v", 3, level(3.0));
        c.insert("v", 1, level(1.0));
        let (lvl, hit) = c.nearest_coarser("v", 0, 3).unwrap();
        assert_eq!(lvl, 1);
        assert_eq!(hit.delta_rms, 1.0);
        assert!(c.nearest_coarser("v", 3, 3).is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = LevelCache::new(0);
        assert!(!c.enabled());
        c.insert("v", 0, level(0.0));
        assert!(c.get("v", 0).is_none());
        assert_eq!(c.len(), 0);
    }
}
