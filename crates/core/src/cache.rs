//! Decoded-level LRU cache.
//!
//! Campaign analytics revisit levels: blob detection runs at several
//! accuracies, a coarse exploratory pass precedes a focused refinement,
//! dashboards re-render the same variable. [`LevelCache`] keeps the last
//! few fully restored `(var, level)` fields in memory so a repeat read
//! skips tier I/O *and* decompression entirely — the reader answers from
//! the cache with zero `read.bytes_io` traffic.
//!
//! Entries share their mesh and data through `Arc`s, so a hit clones two
//! pointers; the deep copy happens only when the caller materialises a
//! [`ReadOutcome`](crate::read::ReadOutcome). Only level-exact fields are
//! cached — mixed-accuracy results from region refinement never enter.
//!
//! Retention is bounded twice over: by entry count (the configured
//! capacity) and by approximate resident bytes
//! ([`LevelCache::DEFAULT_MAX_BYTES`] unless overridden), so caching the
//! fine levels of a large variable cannot pin unbounded memory. Eviction
//! is LRU-first under either bound; the most recently inserted entry is
//! always retained — even alone over the byte budget — so a repeat read
//! of the same `(var, level)` still answers from memory.
//!
//! ## Lock order
//!
//! `Inner` sits behind a single mutex that is a **leaf lock** of the
//! read path: no code path acquires another lock, performs tier I/O,
//! decodes, or touches the metrics registry while holding it. Callers
//! that need a multi-step decision (exact hit *or* nearest coarser
//! fallback) use [`LevelCache::probe`], which classifies under one
//! acquisition so the answer is consistent even while concurrent
//! readers insert and evict. The reader-wide order is documented on
//! [`CanopusReader`](crate::read::CanopusReader): `meta_cache` →
//! `LevelCache::inner` → registry instrument maps, each released before
//! the next is taken.

use canopus_mesh::TriMesh;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One cached restored level.
#[derive(Clone)]
pub(crate) struct CachedLevel {
    pub mesh: Arc<TriMesh>,
    pub data: Arc<Vec<f64>>,
    /// RMS of the delta applied to reach this level (0 for the base),
    /// so a cache-served refinement can still report the paper's
    /// adjacent-level RMSE termination criterion.
    pub delta_rms: f64,
}

impl CachedLevel {
    /// Approximate resident size: the vertex field plus the mesh's
    /// point and connectivity arrays.
    fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
            + self.mesh.num_vertices() * std::mem::size_of::<canopus_mesh::geometry::Point2>()
            + self.mesh.num_triangles() * std::mem::size_of::<[canopus_mesh::VertexId; 3]>()
    }
}

/// Cache key: a fully restored level, or one decoded spatial chunk of a
/// sharded delta (`(var, finer level, chunk)`). Both populations share
/// one tick sequence, entry capacity and byte budget, so hot levels and
/// hot chunks compete for the same residency.
#[derive(Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    Level(String, u32),
    Chunk(String, u32, u32),
}

/// What a cache entry holds, matching its key's shape.
enum CacheValue {
    Level(CachedLevel),
    Chunk(Arc<Vec<f64>>),
}

impl CacheValue {
    fn approx_bytes(&self) -> usize {
        match self {
            CacheValue::Level(l) => l.approx_bytes(),
            CacheValue::Chunk(v) => v.len() * std::mem::size_of::<f64>(),
        }
    }
}

struct Entry {
    value: CacheValue,
    last_used: u64,
    bytes: usize,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    /// Sum of `Entry::bytes` over `map`.
    bytes: usize,
}

/// A small LRU of decoded levels, keyed by `(var, level)`, bounded by
/// entry count and approximate bytes.
pub(crate) struct LevelCache {
    capacity: usize,
    /// Atomic (not a field behind the mutex, not `&mut`): the budget is
    /// adjustable through a shared reference, so a long-lived service
    /// holding the reader in an `Arc` can still retune it.
    max_bytes: AtomicUsize,
    inner: Mutex<Inner>,
}

/// Outcome of a single-lock [`LevelCache::probe`].
pub(crate) enum Probe {
    /// The exact `(var, level)` entry was resident.
    Exact(CachedLevel),
    /// No exact entry, but the finest strictly coarser cached level —
    /// the best starting point for a walk down to the target.
    Coarser(u32, CachedLevel),
    /// Nothing cached for this variable at or above the target.
    Miss,
}

impl LevelCache {
    /// Default byte budget: generous for the paper's meshes (a 130k-
    /// triangle level is a few MB) while capping the worst case of
    /// `capacity` fine levels of a large variable.
    pub const DEFAULT_MAX_BYTES: usize = 256 << 20;

    /// `capacity` = max retained entries; 0 disables the cache entirely.
    /// The byte budget defaults to [`Self::DEFAULT_MAX_BYTES`].
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            max_bytes: AtomicUsize::new(Self::DEFAULT_MAX_BYTES),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
        }
    }

    /// Override the approximate-byte budget (entry capacity still
    /// applies). Takes `&self`: the budget is an atomic so a shared
    /// reader never needs exclusive access to retune it.
    pub fn set_max_bytes(&self, max_bytes: usize) {
        self.max_bytes.store(max_bytes, Ordering::Relaxed);
    }

    /// The configured approximate-byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes.load(Ordering::Relaxed)
    }

    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    #[cfg(test)]
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Look up an exact `(var, level)` entry, refreshing its recency.
    pub fn get(&self, var: &str, level: u32) -> Option<CachedLevel> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .map
            .get_mut(&CacheKey::Level(var.to_string(), level))?;
        entry.last_used = tick;
        match &entry.value {
            CacheValue::Level(l) => Some(l.clone()),
            CacheValue::Chunk(_) => unreachable!("level key holds a level value"),
        }
    }

    /// Look up one decoded spatial chunk of `(var, finer level)`,
    /// refreshing its recency. A hit saves the ranged fetch *and* the
    /// decode of a region refinement revisiting the same chunk.
    pub fn get_chunk(&self, var: &str, level: u32, chunk: u32) -> Option<Arc<Vec<f64>>> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .map
            .get_mut(&CacheKey::Chunk(var.to_string(), level, chunk))?;
        entry.last_used = tick;
        match &entry.value {
            CacheValue::Chunk(v) => Some(Arc::clone(v)),
            CacheValue::Level(_) => unreachable!("chunk key holds a chunk value"),
        }
    }

    /// Classify a read of `(var, level)` — exact hit, nearest coarser
    /// starting point, or miss — under **one** lock acquisition, so the
    /// classification (and therefore hit/miss accounting) is a single
    /// consistent decision even while other readers insert and evict
    /// concurrently. Whichever entry answers has its recency refreshed.
    pub fn probe(&self, var: &str, level: u32, coarsest: u32) -> Probe {
        if !self.enabled() {
            return Probe::Miss;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Only `Level` keys participate: a cached chunk is not a level
        // starting point.
        for candidate in level..=coarsest {
            if let Some(entry) = inner
                .map
                .get_mut(&CacheKey::Level(var.to_string(), candidate))
            {
                entry.last_used = tick;
                let value = match &entry.value {
                    CacheValue::Level(l) => l.clone(),
                    CacheValue::Chunk(_) => unreachable!("level key holds a level value"),
                };
                return if candidate == level {
                    Probe::Exact(value)
                } else {
                    Probe::Coarser(candidate, value)
                };
            }
        }
        Probe::Miss
    }

    /// Insert (or refresh) an entry, evicting least-recently-used ones
    /// while over the entry capacity or the byte budget. The entry just
    /// inserted is never evicted, so one oversized level degrades to a
    /// single-entry cache instead of thrashing.
    pub fn insert(&self, var: &str, level: u32, value: CachedLevel) {
        self.insert_entry(
            CacheKey::Level(var.to_string(), level),
            CacheValue::Level(value),
        );
    }

    /// Retain one decoded spatial chunk of `(var, finer level)` under the
    /// same capacity and byte budget as whole levels.
    pub fn insert_chunk(&self, var: &str, level: u32, chunk: u32, values: Arc<Vec<f64>>) {
        self.insert_entry(
            CacheKey::Chunk(var.to_string(), level, chunk),
            CacheValue::Chunk(values),
        );
    }

    /// Insert (or refresh) an entry, evicting least-recently-used ones
    /// while over the entry capacity or the byte budget. The entry just
    /// inserted is never evicted.
    fn insert_entry(&self, key: CacheKey, value: CacheValue) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = value.approx_bytes();
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
                bytes,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let max_bytes = self.max_bytes();
        while inner.map.len() > self.capacity || (inner.bytes > max_bytes && inner.map.len() > 1) {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over a bound");
            let evicted = inner.map.remove(&oldest).expect("oldest key present");
            inner.bytes -= evicted.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::generators::rectangle_mesh;
    use canopus_mesh::geometry::{Aabb, Point2};

    fn level(v: f64) -> CachedLevel {
        let mesh = rectangle_mesh(
            2,
            2,
            Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
        );
        CachedLevel {
            mesh: Arc::new(mesh),
            data: Arc::new(vec![v; 4]),
            delta_rms: v,
        }
    }

    /// A level with `n` data values, for byte-bound tests.
    fn sized_level(n: usize) -> CachedLevel {
        let mesh = rectangle_mesh(
            2,
            2,
            Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
        );
        CachedLevel {
            mesh: Arc::new(mesh),
            data: Arc::new(vec![0.0; n]),
            delta_rms: 0.0,
        }
    }

    #[test]
    fn get_insert_roundtrip() {
        let c = LevelCache::new(4);
        assert!(c.get("v", 0).is_none());
        c.insert("v", 0, level(1.0));
        let hit = c.get("v", 0).unwrap();
        assert_eq!(*hit.data, vec![1.0; 4]);
        assert!(c.get("w", 0).is_none(), "keys include the variable");
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = LevelCache::new(2);
        c.insert("v", 0, level(0.0));
        c.insert("v", 1, level(1.0));
        c.get("v", 0); // refresh 0 → 1 is now the LRU entry
        c.insert("v", 2, level(2.0));
        assert_eq!(c.len(), 2);
        assert!(c.get("v", 0).is_some());
        assert!(c.get("v", 1).is_none(), "LRU entry evicted");
        assert!(c.get("v", 2).is_some());
    }

    #[test]
    fn byte_budget_evicts_lru_and_tracks_residency() {
        let c = LevelCache::new(16);
        // Room for two ~8 KiB fields, not three.
        c.set_max_bytes(20 << 10);
        c.insert("v", 0, sized_level(1024));
        c.insert("v", 1, sized_level(1024));
        assert_eq!(c.len(), 2);
        c.get("v", 0); // 1 becomes the LRU entry
        c.insert("v", 2, sized_level(1024));
        assert_eq!(c.len(), 2, "byte budget holds two entries");
        assert!(c.get("v", 0).is_some());
        assert!(c.get("v", 1).is_none(), "LRU entry evicted on bytes");
        assert!(c.get("v", 2).is_some());
        assert!(c.resident_bytes() <= 20 << 10);
    }

    #[test]
    fn oversized_entry_is_retained_alone() {
        let c = LevelCache::new(4);
        c.set_max_bytes(1 << 10);
        c.insert("v", 0, sized_level(64));
        c.insert("v", 1, sized_level(4096)); // alone exceeds the budget
        assert_eq!(c.len(), 1, "everything else evicted");
        assert!(
            c.get("v", 1).is_some(),
            "the newest entry survives its own insert"
        );
    }

    #[test]
    fn reinsert_replaces_byte_accounting() {
        let c = LevelCache::new(4);
        c.set_max_bytes(1 << 20);
        c.insert("v", 0, sized_level(1024));
        let first = c.resident_bytes();
        c.insert("v", 0, sized_level(2048));
        assert!(c.resident_bytes() > first);
        c.insert("v", 0, sized_level(1024));
        assert_eq!(c.resident_bytes(), first, "replaced entry fully released");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_classifies_exact_coarser_and_miss_in_one_pass() {
        let c = LevelCache::new(4);
        c.insert("v", 3, level(3.0));
        c.insert("v", 1, level(1.0));
        // Exact entry wins over any coarser one.
        match c.probe("v", 1, 3) {
            Probe::Exact(hit) => assert_eq!(hit.delta_rms, 1.0),
            _ => panic!("expected exact hit"),
        }
        // No exact entry: the finest strictly coarser level answers.
        match c.probe("v", 0, 3) {
            Probe::Coarser(lvl, hit) => {
                assert_eq!(lvl, 1);
                assert_eq!(hit.delta_rms, 1.0);
            }
            _ => panic!("expected coarser hit"),
        }
        // Nothing cached at or above the target, or unknown variable.
        assert!(matches!(c.probe("w", 0, 3), Probe::Miss));
        c.insert("v", 0, level(0.0));
        assert!(matches!(c.probe("v", 0, 3), Probe::Exact(_)));
    }

    #[test]
    fn chunks_share_the_budget_with_levels() {
        let c = LevelCache::new(2);
        c.insert("v", 0, level(0.0));
        c.insert_chunk("v", 0, 3, Arc::new(vec![1.0; 8]));
        assert_eq!(c.len(), 2);
        assert_eq!(*c.get_chunk("v", 0, 3).unwrap(), vec![1.0; 8]);
        assert!(c.get_chunk("v", 0, 4).is_none());
        assert!(c.get_chunk("w", 0, 3).is_none(), "keys include the var");
        c.get_chunk("v", 0, 3); // refresh → the level is now the LRU entry
        c.insert_chunk("v", 0, 4, Arc::new(vec![2.0; 8]));
        assert_eq!(c.len(), 2, "levels and chunks share the capacity");
        assert!(c.get("v", 0).is_none(), "LRU level evicted by a chunk");
        // Chunk entries never answer level probes.
        assert!(matches!(c.probe("v", 0, 3), Probe::Miss));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = LevelCache::new(0);
        assert!(!c.enabled());
        c.insert("v", 0, level(0.0));
        assert!(c.get("v", 0).is_none());
        assert_eq!(c.len(), 0);
    }
}
