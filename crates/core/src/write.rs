//! The write-side pipeline: refactor → compress → place (paper Fig. 1,
//! left half), with the §IV-C phase timing breakdown.

use crate::config::CanopusConfig;
use crate::error::CanopusError;
use bytes::Bytes;
use canopus_adios::store::{BlockWrite, BpStore};
use canopus_adios::{checksum64, BpFile, ChunkEntry};
use canopus_compress::{Chunked, Codec, CodecKind, ObservedCodec, CHUNKED_CODEC_ID_FLAG};
use canopus_mesh::geometry::Aabb;
use canopus_mesh::{FieldStats, TriMesh};
use canopus_obs::{names, stage, stage_child, Registry, SpanContext};
use canopus_refactor::decimate::decimate;
use canopus_refactor::mapping::{build_mapping, mapping_to_bytes};
use canopus_refactor::{compute_delta, decimate_parallel_morton, DecimationResult, Estimator};
use canopus_storage::{PlacementPlan, ProductKind, SimDuration, StorageHierarchy};
use crossbeam::channel;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Report for one product (one stored block).
#[derive(Debug, Clone)]
pub struct ProductReport {
    pub key: String,
    pub kind: ProductKind,
    pub raw_bytes: u64,
    pub stored_bytes: u64,
    /// Tier index the product landed on.
    pub tier: usize,
}

/// Full write-side report: the paper's Fig. 6b time breakdown plus
/// per-product placement and sizes.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Wall seconds spent decimating meshes (Alg. 1).
    pub decimation_secs: f64,
    /// Wall seconds spent on mapping + delta calculation (Alg. 2).
    pub delta_secs: f64,
    /// Wall seconds spent compressing base + deltas.
    pub compress_secs: f64,
    /// Simulated I/O time for writing all products + metadata.
    pub io_time: SimDuration,
    pub products: Vec<ProductReport>,
    pub num_levels: u32,
}

impl WriteReport {
    /// Total stored bytes across data products (excluding mesh metadata).
    pub fn stored_data_bytes(&self) -> u64 {
        self.products
            .iter()
            .filter(|p| !matches!(p.kind, ProductKind::Metadata { .. }))
            .map(|p| p.stored_bytes)
            .sum()
    }

    /// Raw bytes of the original variable.
    pub fn original_bytes(&self) -> u64 {
        self.products
            .iter()
            .filter(|p| matches!(p.kind, ProductKind::Delta { finer: 0, .. }))
            .map(|p| p.raw_bytes)
            .sum::<u64>()
            .max(
                // Single-level writes have no deltas; the base is the
                // original.
                self.products
                    .iter()
                    .filter(|p| matches!(p.kind, ProductKind::Base { .. }))
                    .map(|p| p.raw_bytes)
                    .sum(),
            )
    }
}

/// Minimum stream length worth chunk-framing; below this the framing
/// header and thread hand-off outweigh any decode parallelism.
pub(crate) const CHUNK_MIN_ELEMS: usize = 4096;

/// Chunk size (in elements) for compressing an `n`-value product
/// stream, or `None` to keep the stream monolithic. The grain targets
/// one chunk per core, but never coarser than the configured
/// `delta_chunks` so chunk-framed codec streams scale with the same
/// knob as spatial placement chunks; chunks never shrink below 512
/// elements.
pub(crate) fn codec_chunk_elems(n: usize, delta_chunks: u32) -> Option<usize> {
    if n < CHUNK_MIN_ELEMS {
        return None;
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let grain = cores.max(delta_chunks as usize).max(1);
    Some(n.div_ceil(grain).max(512))
}

/// Contiguous vertex-index ranges for splitting a delta of `n` values
/// into `chunks` spatial chunks. Writer and reader must agree; this is
/// the single source of truth.
pub(crate) fn chunk_ranges(n: usize, chunks: u32) -> Vec<std::ops::Range<usize>> {
    let c = (chunks.max(1) as usize).min(n.max(1));
    (0..c).map(|i| (i * n / c)..((i + 1) * n / c)).collect()
}

/// Spatial chunk count of the sharded layout when `delta_chunks` does
/// not pin one: enough chunks that a small region prunes most of a
/// level, few enough that per-chunk codec headers stay negligible.
pub(crate) const DEFAULT_SPATIAL_CHUNKS: u32 = 16;

/// How many spatial chunks pack into one shard object. Few shards per
/// tier keep the object count (and placement decisions) small; the
/// chunk index makes each shard range-addressable.
pub(crate) const SHARD_CHUNKS: u32 = 8;

/// Chunk count of the sharded spatial layout for a given `delta_chunks`
/// setting (the knob pins it when > 1).
pub(crate) fn spatial_chunk_count(delta_chunks: u32) -> u32 {
    if delta_chunks > 1 {
        delta_chunks
    } else {
        DEFAULT_SPATIAL_CHUNKS
    }
}

/// Interleave the low 21 bits of `x` and `y` into a Morton code
/// (bit-by-bit; this runs once per vertex per write/read, so clarity
/// beats the magic-mask variant).
fn morton(x: u32, y: u32) -> u64 {
    let mut out = 0u64;
    for bit in 0..21 {
        out |= (((x >> bit) & 1) as u64) << (2 * bit);
        out |= (((y >> bit) & 1) as u64) << (2 * bit + 1);
    }
    out
}

/// Spatially coherent vertex partitioning: vertices sorted by the Morton
/// code of their quantized position, split into `chunks` equal runs.
/// Deterministic in the mesh geometry, so the reader recomputes the same
/// assignment with no extra metadata — exactly how the focused-retrieval
/// chunks stay self-describing.
pub(crate) fn spatial_chunks(mesh: &TriMesh, chunks: u32) -> Vec<Vec<u32>> {
    let n = mesh.num_vertices();
    let bb = mesh.aabb();
    let w = bb.width().max(f64::MIN_POSITIVE);
    let h = bb.height().max(f64::MIN_POSITIVE);
    let scale = ((1u32 << 21) - 1) as f64;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| {
        let p = mesh.point(v);
        let qx = (((p.x - bb.min.x) / w) * scale) as u32;
        let qy = (((p.y - bb.min.y) / h) * scale) as u32;
        (morton(qx, qy), v)
    });
    chunk_ranges(n, chunks)
        .into_iter()
        .map(|r| order[r].to_vec())
        .collect()
}

/// Pack a level's auxiliary metadata payload: mesh geometry plus (for
/// non-base levels) the fine-vertex → coarse-triangle mapping.
fn encode_level_meta(mesh_bytes: &[u8], mapping_bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + mesh_bytes.len() + mapping_bytes.len());
    out.extend_from_slice(&(mesh_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(mesh_bytes);
    out.extend_from_slice(&(mapping_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(mapping_bytes);
    out
}

/// Unpack [`encode_level_meta`]'s payload.
pub(crate) fn decode_level_meta(bytes: &[u8]) -> Result<(Vec<u8>, Vec<u8>), CanopusError> {
    let fail = || CanopusError::MeshIo("level metadata truncated".into());
    if bytes.len() < 4 {
        return Err(fail());
    }
    let mesh_len = u32::from_le_bytes(bytes[..4].try_into().expect("4")) as usize;
    let rest = &bytes[4..];
    if rest.len() < mesh_len + 4 {
        return Err(fail());
    }
    let mesh_bytes = rest[..mesh_len].to_vec();
    let rest = &rest[mesh_len..];
    let map_len = u32::from_le_bytes(rest[..4].try_into().expect("4")) as usize;
    if rest.len() < 4 + map_len {
        return Err(fail());
    }
    let mapping_bytes = rest[4..4 + map_len].to_vec();
    Ok((mesh_bytes, mapping_bytes))
}

/// The Canopus middleware handle: one storage hierarchy + one pipeline
/// configuration.
pub struct Canopus {
    store: BpStore,
    config: CanopusConfig,
}

impl Canopus {
    pub fn new(hierarchy: Arc<StorageHierarchy>, config: CanopusConfig) -> Self {
        // A configured fault plan arms every tier of the hierarchy; the
        // default `FaultPlan::none()` leaves injection entirely disabled
        // (and the tiers on their zero-overhead fast path).
        if !config.fault.is_none() {
            hierarchy.set_fault_plan_all(config.fault);
        }
        // Adaptive tiering needs per-key heat from day one: arm the
        // tracker before any reads so the policy never sees a cold map.
        if config.adaptive_tiering {
            hierarchy.enable_access_tracking();
        }
        Self {
            store: BpStore::with_policy(hierarchy, config.policy),
            config,
        }
    }

    pub fn config(&self) -> &CanopusConfig {
        &self.config
    }

    pub fn store(&self) -> &BpStore {
        &self.store
    }

    pub fn hierarchy(&self) -> &StorageHierarchy {
        self.store.hierarchy()
    }

    /// Shared handle to the hierarchy (see [`BpStore::hierarchy_arc`]).
    pub fn hierarchy_arc(&self) -> Arc<StorageHierarchy> {
        self.store.hierarchy_arc()
    }

    /// The shared observability registry (anchored on the hierarchy).
    pub fn metrics(&self) -> &Arc<Registry> {
        self.store.hierarchy().metrics()
    }

    /// Refactor, compress and place one variable (paper Fig. 1 left).
    ///
    /// Products are written base-first then deltas coarse→fine, so the
    /// placement policy maps them fastest-tier-first exactly as §III-D
    /// prescribes. Dispatches on
    /// [`CanopusConfig::write_pipeline_depth`]: `0` runs the strictly
    /// serial refactor → compress → place path (the equivalence oracle);
    /// any other depth runs the level-streaming pipeline. Both engines
    /// produce byte-identical tier contents and manifests.
    pub fn write(
        &self,
        file: &str,
        var: &str,
        mesh: &TriMesh,
        data: &[f64],
    ) -> Result<WriteReport, CanopusError> {
        if data.len() != mesh.num_vertices() {
            return Err(CanopusError::Invalid(format!(
                "data has {} values for {} vertices",
                data.len(),
                mesh.num_vertices()
            )));
        }
        if self.config.write_pipeline_depth == 0 {
            self.write_serial(file, var, mesh, data)
        } else {
            self.write_pipelined(file, var, mesh, data)
        }
    }

    /// Decimation kernel dispatch shared by both write engines (so
    /// their products stay bit-identical): the serial edge-collapse
    /// kernel, or the Morton-partitioned parallel kernel when
    /// `decimation_parts` exceeds one. The parallel kernel's output
    /// depends only on the partition count, never on thread scheduling.
    fn decimate_level(&self, mesh: &TriMesh, data: &[f64]) -> DecimationResult {
        let ratio = self.config.refactor.per_level_ratio;
        let parts = self.config.decimation_parts;
        if parts > 1 {
            decimate_parallel_morton(mesh, data, ratio, parts as usize)
        } else {
            decimate(mesh, data, ratio)
        }
    }

    /// The serial write engine: every stage runs as a barrier — all
    /// decimation, then all mappings + deltas, then all compression,
    /// then placement.
    fn write_serial(
        &self,
        file: &str,
        var: &str,
        mesh: &TriMesh,
        data: &[f64],
    ) -> Result<WriteReport, CanopusError> {
        let rc = self.config.refactor;
        let n = rc.num_levels;
        let estimator = rc.estimator;
        let obs = Arc::clone(self.metrics());
        let _span = stage!(obs, "write", file = file, var = var, levels = n);
        let t_total = Instant::now();

        // --- refactor: decimation then mapping+delta, timed separately ---
        let mut meshes: Vec<TriMesh> = vec![mesh.clone()];
        let mut level_data: Vec<Vec<f64>> = vec![data.to_vec()];
        let t0 = Instant::now();
        for l in 0..n.saturating_sub(1) as usize {
            let r = self.decimate_level(&meshes[l], &level_data[l]);
            meshes.push(r.mesh);
            level_data.push(r.data);
        }
        let decimation_secs = t0.elapsed().as_secs_f64();
        obs.timer(names::WRITE_DECIMATE)
            .record_wall(decimation_secs);

        let t1 = Instant::now();
        let mappings: Vec<Vec<u32>> = (0..n.saturating_sub(1) as usize)
            .into_par_iter()
            .map(|l| build_mapping(&meshes[l], &meshes[l + 1]))
            .collect();
        let deltas: Vec<Vec<f64>> = (0..n.saturating_sub(1) as usize)
            .into_par_iter()
            .map(|l| {
                compute_delta(
                    &meshes[l],
                    &level_data[l],
                    &meshes[l + 1],
                    &level_data[l + 1],
                    &mappings[l],
                    estimator,
                )
            })
            .collect();
        let delta_secs = t1.elapsed().as_secs_f64();
        obs.timer(names::WRITE_DELTA).record_wall(delta_secs);

        // --- compress base + deltas ---
        let range = FieldStats::of(data).range();
        let codec_kind = self.config.codec.resolve(range);
        let codec_param = match codec_kind {
            CodecKind::ZfpLike { tolerance } => tolerance,
            CodecKind::SzLike { error_bound } => error_bound,
            _ => 0.0,
        };
        let t2 = Instant::now();
        let base_idx = (n - 1) as usize;
        if self.config.spatial_chunking {
            // Sharded spatial layout: the base stays monolithic, while
            // each delta's Morton chunks compress independently and pack
            // into a few indexed shard objects per level.
            let (bytes, codec_id) = compress_stream(
                &level_data[base_idx],
                codec_kind,
                self.config.codec_chunking,
                self.config.delta_chunks,
                &obs,
            )?;
            let mut blocks = vec![
                data_block(
                    var,
                    ProductKind::Base { level: n - 1 },
                    bytes,
                    FieldStats::of(&level_data[base_idx]),
                    level_data[base_idx].len(),
                    codec_id,
                    codec_param,
                ),
                level_meta_block(var, n - 1, &meshes[base_idx], None),
            ];
            for l in (0..n.saturating_sub(1) as usize).rev() {
                blocks.extend(build_shard_blocks(
                    var,
                    l as u32,
                    &meshes[l],
                    &deltas[l],
                    codec_kind,
                    codec_param,
                    self.config.codec_chunking,
                    self.config.delta_chunks,
                    &obs,
                )?);
                blocks.push(level_meta_block(var, l as u32, &meshes[l], mappings.get(l)));
            }
            let compress_secs = t2.elapsed().as_secs_f64();
            obs.timer(names::WRITE_COMPRESS).record_wall(compress_secs);

            let t3 = Instant::now();
            let (plan, io_time) = self.store.write(file, n, blocks)?;
            obs.timer(names::WRITE_IO)
                .record(t3.elapsed().as_secs_f64(), io_time.seconds());
            let vertex_counts: Vec<usize> = meshes.iter().map(|m| m.num_vertices()).collect();
            let products = self.products_from_plan(&plan, &vertex_counts);
            let report = WriteReport {
                decimation_secs,
                delta_secs,
                compress_secs,
                io_time,
                products,
                num_levels: n,
            };
            self.record_write_totals(&obs, &report, data.len(), t_total.elapsed().as_secs_f64());
            return Ok(report);
        }
        let mut streams: Vec<(ProductKind, &[f64])> =
            vec![(ProductKind::Base { level: n - 1 }, &level_data[base_idx])];
        // Spatially chunked delta payloads, gathered in Morton order so
        // each chunk's vertices are geometrically local.
        let chunked_payloads: Vec<Vec<Vec<f64>>> = if self.config.delta_chunks > 1 {
            (0..n.saturating_sub(1) as usize)
                .map(|l| {
                    spatial_chunks(&meshes[l], self.config.delta_chunks)
                        .into_iter()
                        .map(|ids| ids.iter().map(|&v| deltas[l][v as usize]).collect())
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        for l in (0..n.saturating_sub(1) as usize).rev() {
            if self.config.delta_chunks > 1 {
                for (ci, payload) in chunked_payloads[l].iter().enumerate() {
                    streams.push((
                        ProductKind::DeltaChunk {
                            finer: l as u32,
                            coarser: l as u32 + 1,
                            chunk: ci as u32,
                        },
                        payload.as_slice(),
                    ));
                }
            } else {
                streams.push((
                    ProductKind::Delta {
                        finer: l as u32,
                        coarser: l as u32 + 1,
                    },
                    &deltas[l],
                ));
            }
        }
        // Large streams are chunk-framed through `Chunked` so their
        // chunks compress (and later decompress) across cores; the flag
        // bit in the stored codec id tells the reader which framing to
        // expect.
        let compressed: Vec<(ProductKind, Vec<u8>, FieldStats, usize, u8)> = streams
            .par_iter()
            .map(|&(kind, values)| {
                let (bytes, codec_id) = compress_stream(
                    values,
                    codec_kind,
                    self.config.codec_chunking,
                    self.config.delta_chunks,
                    &obs,
                )?;
                Ok((kind, bytes, FieldStats::of(values), values.len(), codec_id))
            })
            .collect::<Result<_, CanopusError>>()?;
        let compress_secs = t2.elapsed().as_secs_f64();
        obs.timer(names::WRITE_COMPRESS).record_wall(compress_secs);

        // --- assemble blocks in placement order ---
        let mut blocks: Vec<BlockWrite> = Vec::new();
        for (kind, bytes, stats, elements, codec_id) in compressed {
            blocks.push(data_block(
                var,
                kind,
                bytes,
                stats,
                elements,
                codec_id,
                codec_param,
            ));
            // Right after each level's data products, its auxiliary
            // metadata (mesh geometry + mapping) with the same rank. For
            // chunked deltas, only after the last chunk.
            let level = match kind {
                ProductKind::Base { level } => level,
                ProductKind::Delta { finer, .. } => finer,
                ProductKind::DeltaChunk { finer, chunk, .. } => {
                    if chunk + 1 < self.config.delta_chunks {
                        continue;
                    }
                    finer
                }
                ProductKind::DeltaShard { .. } => {
                    unreachable!("sharded layout assembles its blocks above")
                }
                ProductKind::Metadata { level } => level,
            };
            let mapping = mappings.get(level as usize);
            blocks.push(level_meta_block(
                var,
                level,
                &meshes[level as usize],
                mapping,
            ));
        }

        // --- place ---
        let t3 = Instant::now();
        let (plan, io_time) = self.store.write(file, n, blocks)?;
        obs.timer(names::WRITE_IO)
            .record(t3.elapsed().as_secs_f64(), io_time.seconds());
        let vertex_counts: Vec<usize> = meshes.iter().map(|m| m.num_vertices()).collect();
        let products = self.products_from_plan(&plan, &vertex_counts);

        let report = WriteReport {
            decimation_secs,
            delta_secs,
            compress_secs,
            io_time,
            products,
            num_levels: n,
        };
        self.record_write_totals(&obs, &report, data.len(), t_total.elapsed().as_secs_f64());
        Ok(report)
    }

    /// The level-streaming write engine — the write-side counterpart of
    /// the pipelined restore engine in [`crate::read`]. Three stages run
    /// concurrently, connected by bounded channels:
    ///
    /// 1. **Decimate** — this thread walks the level chain (inherently
    ///    sequential: level `l + 1` is decimated from level `l`) and
    ///    submits level `l`'s mapping/delta/compression job the moment
    ///    level `l + 1` exists ([`names::WRITE_STAGE_DEPTH`] tracks the
    ///    queue, its `_PEAK` twin the high-water mark);
    /// 2. **Refactor + compress** — a worker pool builds each level's
    ///    mapping, delta, spatial chunks and compressed blocks, in
    ///    whatever order jobs arrive;
    /// 3. **Place** — this thread emits finished blocks in the serial
    ///    engine's exact order (base first, then deltas coarse→fine)
    ///    into a streaming store write; per-tier write-behind queues
    ///    overlap the device writes with compression still in flight,
    ///    and the commit barrier drains every queue before the manifest
    ///    is published.
    ///
    /// Placement decisions reserve their bytes as they are made, so tier
    /// choices — and therefore all stored bytes and the manifest — match
    /// the serial engine exactly. Phase seconds keep their serial
    /// meaning (sums of per-stage work); the overlap won is exported
    /// under [`names::WRITE_OVERLAP`].
    fn write_pipelined(
        &self,
        file: &str,
        var: &str,
        mesh: &TriMesh,
        data: &[f64],
    ) -> Result<WriteReport, CanopusError> {
        let n = self.config.refactor.num_levels;
        let obs = Arc::clone(self.metrics());
        let span = stage!(obs, "write", file = file, var = var, levels = n);
        let root_ctx = span.context();
        let t_total = Instant::now();

        let range = FieldStats::of(data).range();
        let codec_kind = self.config.codec.resolve(range);
        let codec_param = match codec_kind {
            CodecKind::ZfpLike { tolerance } => tolerance,
            CodecKind::SzLike { error_bound } => error_bound,
            _ => 0.0,
        };
        let ctx = WriteJobCtx {
            var: var.to_string(),
            codec_kind,
            codec_param,
            delta_chunks: self.config.delta_chunks,
            codec_chunking: self.config.codec_chunking,
            spatial_chunking: self.config.spatial_chunking,
            estimator: self.config.refactor.estimator,
            obs: Arc::clone(&obs),
            parent: root_ctx,
        };

        let depth = self.config.write_pipeline_depth.max(1) as usize;
        let total_jobs = n as usize; // n - 1 delta jobs + the base job
        let workers = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(total_jobs)
            .max(1);

        // Jobs travel with their submit instant so worker pickup can
        // record the queue-wait distribution.
        let (job_tx, job_rx) = channel::bounded::<(WriteJob, Instant)>(depth);
        // Sized so worker sends can never block: an early error return
        // on the emitting side then cannot deadlock the pool, which
        // simply drains the job queue and exits.
        let (done_tx, done_rx) =
            channel::bounded::<(usize, Result<LevelBlocks, CanopusError>)>(total_jobs + 1);
        let depth_gauge = obs.gauge(names::WRITE_STAGE_DEPTH);
        let peak_gauge = obs.gauge(names::WRITE_STAGE_DEPTH_PEAK);

        let ctx = &ctx;
        let depth_gauge = &depth_gauge;

        let mut decimation_secs = 0.0;
        let mut delta_secs = 0.0;
        let mut compress_secs = 0.0;
        let mut store_secs = 0.0;

        let (plan, io_time, vertex_counts) = std::thread::scope(
            |s| -> Result<(PlacementPlan, SimDuration, Vec<usize>), CanopusError> {
                // Stage 2: the worker pool. The receiver is
                // multi-consumer, so each worker holds its own clone of
                // the shared queue; workers exit when the decimation
                // stage is done and the queue is drained (recv
                // disconnects).
                for _ in 0..workers {
                    let job_rx = job_rx.clone();
                    let done_tx = done_tx.clone();
                    let queue_wait = obs.histogram(names::WRITE_QUEUE_WAIT_HIST);
                    s.spawn(move || {
                        while let Ok((job, submitted)) = job_rx.recv() {
                            depth_gauge.sub(1);
                            queue_wait.observe_secs(submitted.elapsed().as_secs_f64());
                            let slot = job.slot(total_jobs);
                            if done_tx.send((slot, run_write_job(&job, ctx))).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(done_tx);

                // Stage 1: decimate the level chain on this thread,
                // streaming each finished level's job to the pool.
                let mut meshes: Vec<Arc<TriMesh>> = vec![Arc::new(mesh.clone())];
                let mut level_data: Vec<Arc<Vec<f64>>> = vec![Arc::new(data.to_vec())];
                {
                    let submit = |job: WriteJob| -> Result<(), CanopusError> {
                        depth_gauge.add(1);
                        peak_gauge.set_max(depth_gauge.get());
                        job_tx.send((job, Instant::now())).map_err(|_| {
                            depth_gauge.sub(1);
                            CanopusError::Invalid("write pipeline terminated early".into())
                        })
                    };
                    for l in 0..n.saturating_sub(1) as usize {
                        let t = Instant::now();
                        let r = self.decimate_level(&meshes[l], &level_data[l]);
                        decimation_secs += t.elapsed().as_secs_f64();
                        meshes.push(Arc::new(r.mesh));
                        level_data.push(Arc::new(r.data));
                        submit(WriteJob::Delta {
                            finer: l,
                            fine_mesh: Arc::clone(&meshes[l]),
                            fine_data: Arc::clone(&level_data[l]),
                            coarse_mesh: Arc::clone(&meshes[l + 1]),
                            coarse_data: Arc::clone(&level_data[l + 1]),
                        })?;
                    }
                    // The base is submitted last: it is the first block
                    // to place, and with the chain fully decimated it is
                    // ready immediately.
                    let base = n.saturating_sub(1) as usize;
                    submit(WriteJob::Base {
                        level: base,
                        mesh: Arc::clone(&meshes[base]),
                        data: Arc::clone(&level_data[base]),
                    })?;
                }
                drop(job_tx);

                // Stage 3: emit to the streaming store in placement
                // order as levels complete — base first, then deltas
                // coarse→fine.
                let mut slots: Vec<Option<LevelBlocks>> = (0..total_jobs).map(|_| None).collect();
                let mut stream = self.store.begin_write(file, n, depth);
                let order =
                    std::iter::once(total_jobs - 1).chain((0..total_jobs.saturating_sub(1)).rev());
                for slot in order {
                    while slots[slot].is_none() {
                        let (finished, out) = done_rx.recv().map_err(|_| {
                            CanopusError::Invalid("write pipeline terminated early".into())
                        })?;
                        slots[finished] = Some(out?);
                    }
                    let (blocks, delta_wall, compress_wall) =
                        slots[slot].take().expect("slot just filled");
                    delta_secs += delta_wall;
                    compress_secs += compress_wall;
                    for b in blocks {
                        let t = Instant::now();
                        stream.push(b)?;
                        store_secs += t.elapsed().as_secs_f64();
                    }
                }
                let t = Instant::now();
                let commit_span = stage_child!(obs, root_ctx, "write.commit", file = file);
                let (plan, io_time) = stream.commit()?;
                drop(commit_span);
                store_secs += t.elapsed().as_secs_f64();
                let vertex_counts = meshes.iter().map(|m| m.num_vertices()).collect();
                Ok((plan, io_time, vertex_counts))
            },
        )?;

        obs.timer(names::WRITE_DECIMATE)
            .record_wall(decimation_secs);
        obs.timer(names::WRITE_DELTA).record_wall(delta_secs);
        obs.timer(names::WRITE_COMPRESS).record_wall(compress_secs);
        obs.timer(names::WRITE_IO)
            .record(store_secs, io_time.seconds());
        let elapsed = t_total.elapsed().as_secs_f64();
        let overlap =
            (decimation_secs + delta_secs + compress_secs + store_secs - elapsed).max(0.0);
        obs.timer(names::WRITE_OVERLAP).record_wall(overlap);
        obs.counter(names::WRITE_PIPELINED).inc();

        let products = self.products_from_plan(&plan, &vertex_counts);
        let report = WriteReport {
            decimation_secs,
            delta_secs,
            compress_secs,
            io_time,
            products,
            num_levels: n,
        };
        self.record_write_totals(&obs, &report, data.len(), elapsed);
        Ok(report)
    }

    /// Rebuild per-product reports from a placement plan: stored sizes
    /// come from the tier devices, raw sizes from the level vertex
    /// counts (a delta carries one value per fine-level vertex).
    fn products_from_plan(
        &self,
        plan: &PlacementPlan,
        vertex_counts: &[usize],
    ) -> Vec<ProductReport> {
        plan.assignments
            .iter()
            .map(|(key, tier)| {
                // Looking the block back up through the open file would
                // be circular; reconstruct from the plan + store.
                let stored = self
                    .store
                    .hierarchy()
                    .tier_device(*tier)
                    .and_then(|d| d.size_of(key))
                    .unwrap_or(0);
                let kind = parse_kind_from_key(key).unwrap_or(ProductKind::Metadata { level: 0 });
                let raw_bytes = match kind {
                    ProductKind::Base { level } => vertex_counts[level as usize] as u64 * 8,
                    ProductKind::Delta { finer, .. } => vertex_counts[finer as usize] as u64 * 8,
                    ProductKind::DeltaChunk { finer, chunk, .. } => {
                        let ranges =
                            chunk_ranges(vertex_counts[finer as usize], self.config.delta_chunks);
                        ranges[chunk as usize].len() as u64 * 8
                    }
                    ProductKind::DeltaShard { finer, shard, .. } => {
                        let ranges = chunk_ranges(
                            vertex_counts[finer as usize],
                            spatial_chunk_count(self.config.delta_chunks),
                        );
                        ranges
                            .iter()
                            .skip(shard as usize * SHARD_CHUNKS as usize)
                            .take(SHARD_CHUNKS as usize)
                            .map(|r| r.len() as u64 * 8)
                            .sum()
                    }
                    ProductKind::Metadata { .. } => stored,
                };
                ProductReport {
                    key: key.clone(),
                    kind,
                    raw_bytes,
                    stored_bytes: stored,
                    tier: *tier,
                }
            })
            .collect()
    }

    /// End-of-write bookkeeping shared by every engine: the total-phase
    /// timer plus the write counters.
    fn record_write_totals(
        &self,
        obs: &Registry,
        report: &WriteReport,
        raw_values: usize,
        total_wall: f64,
    ) {
        obs.timer(names::WRITE_TOTAL)
            .record(total_wall, report.io_time.seconds());
        obs.counter(names::WRITES).inc();
        obs.counter(names::WRITE_BYTES_RAW)
            .add(raw_values as u64 * 8);
        obs.counter(names::WRITE_BYTES_STORED)
            .add(report.stored_data_bytes());
        obs.counter(names::WRITE_PRODUCTS)
            .add(report.products.len() as u64);
    }

    /// Refactor and place many planes of one variable in parallel — the
    /// XGC1 structure the paper leans on: "the decimation is done locally
    /// without requiring communication with other processors, and
    /// therefore is embarrassingly parallel." Each plane becomes its own
    /// BP file `{file_prefix}.p{plane:04}.bp`; refactoring and
    /// compression run concurrently under rayon, while placement
    /// serializes inside the (thread-safe) hierarchy exactly as parallel
    /// writers contending for storage targets do.
    pub fn write_planes(
        &self,
        file_prefix: &str,
        var: &str,
        planes: &[(TriMesh, Vec<f64>)],
    ) -> Result<Vec<WriteReport>, CanopusError> {
        planes
            .par_iter()
            .enumerate()
            .map(|(i, (mesh, data))| {
                self.write(&format!("{file_prefix}.p{i:04}.bp"), var, mesh, data)
            })
            .collect()
    }

    /// Write a variable *without* refactoring (the paper's "None"
    /// baseline): one raw full-accuracy block, placed wherever capacity
    /// allows (on the paper's testbed that is Lustre — tmpfs is sized
    /// proportionally and cannot hold the full data).
    pub fn write_unrefactored(
        &self,
        file: &str,
        var: &str,
        mesh: &TriMesh,
        data: &[f64],
    ) -> Result<WriteReport, CanopusError> {
        let obs = Arc::clone(self.metrics());
        let _span = stage!(obs, "write_unrefactored", file = file, var = var);
        let t_total = Instant::now();
        let codec = ObservedCodec::new(CodecKind::Raw.build(), Arc::clone(&obs));
        let bytes = codec.compress(data)?;
        let stats = FieldStats::of(data);
        let mesh_bytes = canopus_mesh::io::to_binary(mesh);
        let blocks = vec![
            BlockWrite {
                var: var.to_string(),
                kind: ProductKind::Base { level: 0 },
                data: Bytes::from(bytes),
                elements: data.len() as u64,
                codec_id: CodecKind::Raw.id(),
                codec_param: 0.0,
                raw_bytes: data.len() as u64 * 8,
                min: stats.min,
                max: stats.max,
                chunks: vec![],
            },
            BlockWrite {
                var: var.to_string(),
                kind: ProductKind::Metadata { level: 0 },
                data: Bytes::from(encode_level_meta(&mesh_bytes, &[])),
                elements: 0,
                codec_id: 0,
                codec_param: 0.0,
                raw_bytes: mesh_bytes.len() as u64,
                min: 0.0,
                max: 0.0,
                chunks: vec![],
            },
        ];
        let t_io = Instant::now();
        let (plan, io_time) = self.store.write(file, 1, blocks)?;
        obs.timer(names::WRITE_IO)
            .record(t_io.elapsed().as_secs_f64(), io_time.seconds());
        let products = plan
            .assignments
            .iter()
            .map(|(key, tier)| ProductReport {
                key: key.clone(),
                kind: parse_kind_from_key(key).unwrap_or(ProductKind::Metadata { level: 0 }),
                raw_bytes: data.len() as u64 * 8,
                stored_bytes: self
                    .store
                    .hierarchy()
                    .tier_device(*tier)
                    .and_then(|d| d.size_of(key))
                    .unwrap_or(0),
                tier: *tier,
            })
            .collect();
        let report = WriteReport {
            decimation_secs: 0.0,
            delta_secs: 0.0,
            compress_secs: 0.0,
            io_time,
            products,
            num_levels: 1,
        };
        self.record_write_totals(&obs, &report, data.len(), t_total.elapsed().as_secs_f64());
        Ok(report)
    }

    /// Open a previously written file for (progressive) reading. The
    /// reader inherits the configured restore engine (`pipeline_depth`)
    /// and decoded-level cache capacity (`level_cache`).
    pub fn open(&self, file: &str) -> Result<crate::read::CanopusReader, CanopusError> {
        let bp: BpFile = self.store.open(file)?;
        Ok(
            crate::read::CanopusReader::new(bp, self.config.refactor.estimator)
                .with_pipeline_depth(self.config.pipeline_depth)
                .with_level_cache(self.config.level_cache)
                .with_retry(self.config.retry),
        )
    }
}

/// Compress one value stream through the configured codec: chunk-framed
/// via [`Chunked`] when enabled and the stream is large enough, so its
/// chunks (de)compress across cores. The observed codec sits inside the
/// framing, keeping per-chunk metrics under the payload codec's name;
/// the flag bit in the returned codec id tells the reader which framing
/// to expect. Both write engines funnel through here, which is one of
/// the reasons their bytes are identical.
fn compress_stream(
    values: &[f64],
    codec_kind: CodecKind,
    codec_chunking: bool,
    delta_chunks: u32,
    obs: &Arc<Registry>,
) -> Result<(Vec<u8>, u8), CanopusError> {
    let codec = ObservedCodec::new(codec_kind.build(), Arc::clone(obs));
    let chunk_elems = if codec_chunking {
        codec_chunk_elems(values.len(), delta_chunks)
    } else {
        None
    };
    match chunk_elems {
        Some(chunk_elems) => Ok((
            Chunked::new(codec, chunk_elems).compress(values)?,
            codec_kind.id() | CHUNKED_CODEC_ID_FLAG,
        )),
        None => Ok((codec.compress(values)?, codec_kind.id())),
    }
}

/// Assemble one data product block.
fn data_block(
    var: &str,
    kind: ProductKind,
    bytes: Vec<u8>,
    stats: FieldStats,
    elements: usize,
    codec_id: u8,
    codec_param: f64,
) -> BlockWrite {
    BlockWrite {
        var: var.to_string(),
        kind,
        data: Bytes::from(bytes),
        elements: elements as u64,
        codec_id,
        codec_param,
        raw_bytes: elements as u64 * 8,
        min: stats.min,
        max: stats.max,
        chunks: vec![],
    }
}

/// Build one delta level's shard blocks under the sharded spatial
/// layout: the level's Morton chunks compress independently — with the
/// same codec framing the chunked layout uses, so per-chunk bytes match
/// it exactly — then pack in chunk order into shards of [`SHARD_CHUNKS`]
/// chunks. Each shard carries a chunk index (byte ranges, element
/// counts, bounding boxes, value bounds, per-chunk checksums) that the
/// manifest records so readers can plan ranged fetches per region.
/// Both write engines funnel through here, keeping their bytes
/// identical.
#[allow(clippy::too_many_arguments)]
fn build_shard_blocks(
    var: &str,
    finer: u32,
    fine_mesh: &TriMesh,
    delta: &[f64],
    codec_kind: CodecKind,
    codec_param: f64,
    codec_chunking: bool,
    delta_chunks: u32,
    obs: &Arc<Registry>,
) -> Result<Vec<BlockWrite>, CanopusError> {
    struct ChunkBuild {
        bytes: Vec<u8>,
        stats: FieldStats,
        elements: usize,
        codec_id: u8,
        bbox: [f64; 4],
    }
    let id_sets = spatial_chunks(fine_mesh, spatial_chunk_count(delta_chunks));
    let built: Vec<ChunkBuild> = id_sets
        .par_iter()
        .map(|ids| {
            let values: Vec<f64> = ids.iter().map(|&v| delta[v as usize]).collect();
            let (bytes, codec_id) =
                compress_stream(&values, codec_kind, codec_chunking, delta_chunks, obs)?;
            let bb = Aabb::from_points(ids.iter().map(|&v| fine_mesh.point(v)));
            Ok(ChunkBuild {
                stats: FieldStats::of(&values),
                elements: values.len(),
                codec_id,
                bbox: [bb.min.x, bb.min.y, bb.max.x, bb.max.y],
                bytes,
            })
        })
        .collect::<Result<_, CanopusError>>()?;
    let mut blocks = Vec::with_capacity(built.len().div_ceil(SHARD_CHUNKS as usize));
    for (si, group) in built.chunks(SHARD_CHUNKS as usize).enumerate() {
        let base_chunk = si * SHARD_CHUNKS as usize;
        let mut payload: Vec<u8> = Vec::with_capacity(group.iter().map(|c| c.bytes.len()).sum());
        let mut entries: Vec<ChunkEntry> = Vec::with_capacity(group.len());
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut elements = 0u64;
        for (ci, c) in group.iter().enumerate() {
            entries.push(ChunkEntry {
                chunk: (base_chunk + ci) as u32,
                offset: payload.len() as u64,
                len: c.bytes.len() as u64,
                elements: c.elements as u64,
                checksum: checksum64(&c.bytes),
                bbox: c.bbox,
                min: c.stats.min,
                max: c.stats.max,
                codec_id: c.codec_id,
            });
            payload.extend_from_slice(&c.bytes);
            min = min.min(c.stats.min);
            max = max.max(c.stats.max);
            elements += c.elements as u64;
        }
        blocks.push(BlockWrite {
            var: var.to_string(),
            kind: ProductKind::DeltaShard {
                finer,
                coarser: finer + 1,
                shard: si as u32,
            },
            data: Bytes::from(payload),
            elements,
            codec_id: codec_kind.id(),
            codec_param,
            raw_bytes: elements * 8,
            min,
            max,
            chunks: entries,
        });
    }
    Ok(blocks)
}

/// Assemble a level's auxiliary metadata block: mesh geometry plus, for
/// non-base levels, the fine→coarse mapping.
fn level_meta_block(
    var: &str,
    level: u32,
    mesh: &TriMesh,
    mapping: Option<&Vec<u32>>,
) -> BlockWrite {
    let mesh_bytes = canopus_mesh::io::to_binary(mesh);
    let mapping_bytes = match mapping {
        Some(m) => mapping_to_bytes(m),
        None => Vec::new(),
    };
    let payload = encode_level_meta(&mesh_bytes, &mapping_bytes);
    BlockWrite {
        var: var.to_string(),
        kind: ProductKind::Metadata { level },
        data: Bytes::from(payload),
        elements: 0,
        codec_id: 0,
        codec_param: 0.0,
        raw_bytes: mesh_bytes.len() as u64,
        min: 0.0,
        max: 0.0,
        chunks: vec![],
    }
}

/// Per-level output of one pipeline job: the level's blocks in
/// placement order, plus the wall seconds its mapping+delta and
/// compression stages took (phase sums keep their serial meaning).
type LevelBlocks = (Vec<BlockWrite>, f64, f64);

/// Everything a write-pipeline worker needs to build one level's blocks.
struct WriteJobCtx {
    var: String,
    codec_kind: CodecKind,
    codec_param: f64,
    delta_chunks: u32,
    codec_chunking: bool,
    spatial_chunking: bool,
    estimator: Estimator,
    obs: Arc<Registry>,
    /// The enclosing `write` span — worker-thread `write.level` spans
    /// attach here so the pipelined write emits one connected tree.
    parent: SpanContext,
}

/// One unit of work for the write pipeline's worker pool. Level meshes
/// and data are shared via `Arc` because the decimation stage keeps
/// growing the level chain while earlier levels are still compressing.
enum WriteJob {
    /// Mapping + delta + compression between `finer` and `finer + 1`.
    Delta {
        finer: usize,
        fine_mesh: Arc<TriMesh>,
        fine_data: Arc<Vec<f64>>,
        coarse_mesh: Arc<TriMesh>,
        coarse_data: Arc<Vec<f64>>,
    },
    /// Compression of the coarsest (base) level.
    Base {
        level: usize,
        mesh: Arc<TriMesh>,
        data: Arc<Vec<f64>>,
    },
}

impl WriteJob {
    /// Result slot: delta jobs index by their finer level, the base job
    /// takes the last slot.
    fn slot(&self, total_jobs: usize) -> usize {
        match self {
            WriteJob::Delta { finer, .. } => *finer,
            WriteJob::Base { .. } => total_jobs - 1,
        }
    }

    /// The level this job produces blocks for (delta jobs are named by
    /// their finer level).
    fn level(&self) -> usize {
        match self {
            WriteJob::Delta { finer, .. } => *finer,
            WriteJob::Base { level, .. } => *level,
        }
    }
}

/// Run one write-pipeline job: build the level's blocks exactly as the
/// serial engine would — same streams, same codec framing, same
/// metadata payloads — so the emitted bytes are identical.
fn run_write_job(job: &WriteJob, ctx: &WriteJobCtx) -> Result<LevelBlocks, CanopusError> {
    let _span = stage_child!(
        ctx.obs,
        ctx.parent,
        "write.level",
        level = job.level() as u32
    );
    match job {
        WriteJob::Base { level, mesh, data } => {
            let t = Instant::now();
            let (bytes, codec_id) = compress_stream(
                data,
                ctx.codec_kind,
                ctx.codec_chunking,
                ctx.delta_chunks,
                &ctx.obs,
            )?;
            let blocks = vec![
                data_block(
                    &ctx.var,
                    ProductKind::Base {
                        level: *level as u32,
                    },
                    bytes,
                    FieldStats::of(data),
                    data.len(),
                    codec_id,
                    ctx.codec_param,
                ),
                level_meta_block(&ctx.var, *level as u32, mesh, None),
            ];
            Ok((blocks, 0.0, t.elapsed().as_secs_f64()))
        }
        WriteJob::Delta {
            finer,
            fine_mesh,
            fine_data,
            coarse_mesh,
            coarse_data,
        } => {
            let t = Instant::now();
            let mapping = build_mapping(fine_mesh, coarse_mesh);
            let delta = compute_delta(
                fine_mesh,
                fine_data,
                coarse_mesh,
                coarse_data,
                &mapping,
                ctx.estimator,
            );
            let delta_wall = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let l = *finer as u32;
            if ctx.spatial_chunking {
                let mut blocks = build_shard_blocks(
                    &ctx.var,
                    l,
                    fine_mesh,
                    &delta,
                    ctx.codec_kind,
                    ctx.codec_param,
                    ctx.codec_chunking,
                    ctx.delta_chunks,
                    &ctx.obs,
                )?;
                blocks.push(level_meta_block(&ctx.var, l, fine_mesh, Some(&mapping)));
                return Ok((blocks, delta_wall, t.elapsed().as_secs_f64()));
            }
            let streams: Vec<(ProductKind, Vec<f64>)> = if ctx.delta_chunks > 1 {
                spatial_chunks(fine_mesh, ctx.delta_chunks)
                    .into_iter()
                    .enumerate()
                    .map(|(ci, ids)| {
                        (
                            ProductKind::DeltaChunk {
                                finer: l,
                                coarser: l + 1,
                                chunk: ci as u32,
                            },
                            ids.iter().map(|&v| delta[v as usize]).collect(),
                        )
                    })
                    .collect()
            } else {
                vec![(
                    ProductKind::Delta {
                        finer: l,
                        coarser: l + 1,
                    },
                    delta,
                )]
            };
            let compressed: Vec<(ProductKind, Vec<u8>, FieldStats, usize, u8)> = streams
                .par_iter()
                .map(|(kind, values)| {
                    let (bytes, codec_id) = compress_stream(
                        values,
                        ctx.codec_kind,
                        ctx.codec_chunking,
                        ctx.delta_chunks,
                        &ctx.obs,
                    )?;
                    Ok((*kind, bytes, FieldStats::of(values), values.len(), codec_id))
                })
                .collect::<Result<_, CanopusError>>()?;
            let mut blocks: Vec<BlockWrite> = compressed
                .into_iter()
                .map(|(kind, bytes, stats, elements, codec_id)| {
                    data_block(
                        &ctx.var,
                        kind,
                        bytes,
                        stats,
                        elements,
                        codec_id,
                        ctx.codec_param,
                    )
                })
                .collect();
            blocks.push(level_meta_block(&ctx.var, l, fine_mesh, Some(&mapping)));
            Ok((blocks, delta_wall, t.elapsed().as_secs_f64()))
        }
    }
}

/// Recover the product kind from a block key (`…/L2`, `…/d1-2`, `…/m0`).
fn parse_kind_from_key(key: &str) -> Option<ProductKind> {
    let tag = key.rsplit('/').next()?;
    if let Some(rest) = tag.strip_prefix('L') {
        return Some(ProductKind::Base {
            level: rest.parse().ok()?,
        });
    }
    if let Some(rest) = tag.strip_prefix('d') {
        let (a, b) = rest.split_once('-')?;
        // Chunked form: d{finer}-{coarser}.{chunk}
        if let Some((b, c)) = b.split_once('.') {
            return Some(ProductKind::DeltaChunk {
                finer: a.parse().ok()?,
                coarser: b.parse().ok()?,
                chunk: c.parse().ok()?,
            });
        }
        return Some(ProductKind::Delta {
            finer: a.parse().ok()?,
            coarser: b.parse().ok()?,
        });
    }
    if let Some(rest) = tag.strip_prefix('s') {
        // Sharded form: s{finer}-{coarser}.{shard}
        let (a, rest) = rest.split_once('-')?;
        let (b, c) = rest.split_once('.')?;
        return Some(ProductKind::DeltaShard {
            finer: a.parse().ok()?,
            coarser: b.parse().ok()?,
            shard: c.parse().ok()?,
        });
    }
    if let Some(rest) = tag.strip_prefix('m') {
        return Some(ProductKind::Metadata {
            level: rest.parse().ok()?,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_storage::TierSpec;

    fn small_mesh() -> (TriMesh, Vec<f64>) {
        let mesh = jitter_interior(
            &rectangle_mesh(
                12,
                12,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            3,
        );
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 8.0).sin() * (p.y * 6.0).cos())
            .collect();
        (mesh, data)
    }

    fn canopus() -> Canopus {
        let h = Arc::new(StorageHierarchy::new(vec![
            TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
            TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
        ]));
        Canopus::new(h, CanopusConfig::default())
    }

    #[test]
    fn write_produces_expected_products() {
        let c = canopus();
        let (mesh, data) = small_mesh();
        let r = c.write("t.bp", "v", &mesh, &data).unwrap();
        assert_eq!(r.num_levels, 3);
        // base + 2 deltas + 3 metadata blocks.
        assert_eq!(r.products.len(), 6);
        let bases = r
            .products
            .iter()
            .filter(|p| matches!(p.kind, ProductKind::Base { level: 2 }))
            .count();
        assert_eq!(bases, 1);
        assert!(r.io_time.seconds() > 0.0);
        assert!(r.decimation_secs >= 0.0 && r.compress_secs >= 0.0);
    }

    #[test]
    fn base_lands_on_faster_tier_than_last_delta() {
        let c = canopus();
        let (mesh, data) = small_mesh();
        let r = c.write("t.bp", "v", &mesh, &data).unwrap();
        let base_tier = r
            .products
            .iter()
            .find(|p| matches!(p.kind, ProductKind::Base { .. }))
            .unwrap()
            .tier;
        let d0_tier = r
            .products
            .iter()
            .find(|p| matches!(p.kind, ProductKind::Delta { finer: 0, .. }))
            .unwrap()
            .tier;
        assert!(base_tier < d0_tier);
    }

    #[test]
    fn compression_shrinks_data_products() {
        let c = canopus();
        let (mesh, data) = small_mesh();
        let r = c.write("t.bp", "v", &mesh, &data).unwrap();
        for p in &r.products {
            if matches!(p.kind, ProductKind::Delta { .. } | ProductKind::Base { .. }) {
                assert!(
                    p.stored_bytes < p.raw_bytes,
                    "{}: {} !< {}",
                    p.key,
                    p.stored_bytes,
                    p.raw_bytes
                );
            }
        }
    }

    #[test]
    fn unrefactored_baseline_is_one_raw_block() {
        let c = canopus();
        let (mesh, data) = small_mesh();
        let r = c.write_unrefactored("raw.bp", "v", &mesh, &data).unwrap();
        assert_eq!(r.num_levels, 1);
        let base = r
            .products
            .iter()
            .find(|p| matches!(p.kind, ProductKind::Base { .. }))
            .unwrap();
        assert_eq!(base.stored_bytes, data.len() as u64 * 8);
    }

    #[test]
    fn mismatched_data_is_rejected() {
        let c = canopus();
        let (mesh, _) = small_mesh();
        assert!(matches!(
            c.write("t.bp", "v", &mesh, &[1.0, 2.0]),
            Err(CanopusError::Invalid(_))
        ));
    }

    #[test]
    fn parallel_plane_writes_land_independently() {
        let c = canopus();
        let planes: Vec<(TriMesh, Vec<f64>)> = (0..4)
            .map(|i| {
                let (mesh, mut data) = small_mesh();
                for v in &mut data {
                    *v += i as f64;
                }
                (mesh, data)
            })
            .collect();
        let reports = c.write_planes("xgc", "dpot", &planes).unwrap();
        assert_eq!(reports.len(), 4);
        for (i, _) in planes.iter().enumerate() {
            let reader = c.open(&format!("xgc.p{i:04}.bp")).unwrap();
            let out = reader.read_level("dpot", 0).unwrap();
            let expect = &planes[i].1;
            let err = out
                .data
                .iter()
                .zip(expect)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let range = 2.0 + i as f64;
            assert!(err <= 3.0 * 1e-6 * range * 2.0, "plane {i}: err {err}");
        }
    }

    #[test]
    fn level_meta_roundtrip() {
        let payload = encode_level_meta(b"MESHBYTES", b"MAPPING");
        let (mesh, mapping) = decode_level_meta(&payload).unwrap();
        assert_eq!(mesh, b"MESHBYTES");
        assert_eq!(mapping, b"MAPPING");
        assert!(decode_level_meta(&payload[..5]).is_err());
        assert!(decode_level_meta(&[]).is_err());
    }

    #[test]
    fn parse_kind_roundtrip() {
        assert_eq!(
            parse_kind_from_key("f.bp/v/L2"),
            Some(ProductKind::Base { level: 2 })
        );
        assert_eq!(
            parse_kind_from_key("f.bp/v/d1-2"),
            Some(ProductKind::Delta {
                finer: 1,
                coarser: 2
            })
        );
        assert_eq!(
            parse_kind_from_key("f.bp/v/m0"),
            Some(ProductKind::Metadata { level: 0 })
        );
        assert_eq!(
            parse_kind_from_key("f.bp/v/d1-2.7"),
            Some(ProductKind::DeltaChunk {
                finer: 1,
                coarser: 2,
                chunk: 7
            })
        );
        assert_eq!(
            parse_kind_from_key("f.bp/v/s0-1.3"),
            Some(ProductKind::DeltaShard {
                finer: 0,
                coarser: 1,
                shard: 3
            })
        );
        assert_eq!(parse_kind_from_key("f.bp/v/x9"), None);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, c) in [(10usize, 3u32), (7, 7), (5, 1), (100, 8), (3, 10)] {
            let ranges = chunk_ranges(n, c);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous");
            }
        }
    }

    #[test]
    fn chunked_write_produces_chunk_products() {
        let c = {
            let h = Arc::new(StorageHierarchy::new(vec![
                TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
                TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
            ]));
            Canopus::new(
                h,
                CanopusConfig {
                    delta_chunks: 4,
                    ..Default::default()
                },
            )
        };
        let (mesh, data) = small_mesh();
        let r = c.write("ch.bp", "v", &mesh, &data).unwrap();
        let chunk_count = r
            .products
            .iter()
            .filter(|p| matches!(p.kind, ProductKind::DeltaChunk { .. }))
            .count();
        // 2 deltas x 4 chunks each.
        assert_eq!(chunk_count, 8);
        let plain = r
            .products
            .iter()
            .filter(|p| matches!(p.kind, ProductKind::Delta { .. }))
            .count();
        assert_eq!(plain, 0, "chunked mode stores no monolithic deltas");
        // Metadata still once per level.
        let metas = r
            .products
            .iter()
            .filter(|p| matches!(p.kind, ProductKind::Metadata { .. }))
            .count();
        assert_eq!(metas, 3);
    }

    fn sharded_canopus(write_pipeline_depth: u32) -> Canopus {
        let h = Arc::new(StorageHierarchy::new(vec![
            TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
            TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
        ]));
        Canopus::new(
            h,
            CanopusConfig {
                spatial_chunking: true,
                delta_chunks: 4,
                write_pipeline_depth,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sharded_write_produces_indexed_shards() {
        let c = sharded_canopus(0);
        let (mesh, data) = small_mesh();
        let r = c.write("sh.bp", "v", &mesh, &data).unwrap();
        // 4 chunks fit one shard: one shard per delta level.
        let shards: Vec<_> = r
            .products
            .iter()
            .filter(|p| matches!(p.kind, ProductKind::DeltaShard { .. }))
            .collect();
        assert_eq!(shards.len(), 2, "one shard per delta level");
        let loose = r
            .products
            .iter()
            .filter(|p| {
                matches!(
                    p.kind,
                    ProductKind::Delta { .. } | ProductKind::DeltaChunk { .. }
                )
            })
            .count();
        assert_eq!(loose, 0, "sharded mode stores no loose deltas");
        // The manifest indexes every shard: contiguous byte ranges that
        // cover the stored object exactly, with per-chunk checksums.
        let f = c.store().open("sh.bp").unwrap();
        let var = f.meta().vars.iter().find(|v| v.name == "v").unwrap();
        let mut indexed = 0;
        for b in &var.blocks {
            if !matches!(b.kind, ProductKind::DeltaShard { .. }) {
                continue;
            }
            indexed += 1;
            assert_eq!(b.chunks.len(), 4);
            let mut expect_off = 0u64;
            for e in &b.chunks {
                assert_eq!(e.offset, expect_off, "chunks pack contiguously");
                assert!(e.len > 0 && e.elements > 0);
                assert_ne!(e.checksum, 0, "per-chunk checksum recorded");
                assert!(e.bbox[0] <= e.bbox[2] && e.bbox[1] <= e.bbox[3]);
                expect_off += e.len;
            }
            assert_eq!(expect_off, b.stored_bytes, "index covers the shard");
        }
        assert_eq!(indexed, 2);
    }

    #[test]
    fn sharded_engines_are_byte_identical() {
        let (mesh, data) = small_mesh();
        let serial = sharded_canopus(0);
        let piped = sharded_canopus(4);
        serial.write("e.bp", "v", &mesh, &data).unwrap();
        piped.write("e.bp", "v", &mesh, &data).unwrap();
        let a = serial.store().open("e.bp").unwrap();
        let b = piped.store().open("e.bp").unwrap();
        assert_eq!(a.meta(), b.meta(), "manifests identical");
        for (va, vb) in a.meta().vars.iter().zip(&b.meta().vars) {
            for (ba, bb) in va.blocks.iter().zip(&vb.blocks) {
                let (da, _, _) = a.read_block(ba).unwrap();
                let (db, _, _) = b.read_block(bb).unwrap();
                assert_eq!(da, db, "{}", ba.key);
            }
        }
    }
}
