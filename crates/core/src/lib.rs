//! # canopus
//!
//! **Canopus: elastic extreme-scale data analytics on HPC storage** —
//! a full reproduction of Lu et al., IEEE CLUSTER 2017.
//!
//! Canopus refactors simulation output (floating-point fields over
//! unstructured triangular meshes) into a small low-accuracy **base**
//! dataset plus a series of **deltas**, compresses each product with a
//! floating-point codec, and places them across a storage hierarchy —
//! base on the fastest tier, deltas on larger/slower tiers. Analytics
//! then trades accuracy for speed *on the fly*: read just the base for a
//! quick exploratory pass, or progressively fetch deltas to restore any
//! accuracy up to the original.
//!
//! ```
//! use canopus::{Canopus, CanopusConfig};
//! use canopus_storage::StorageHierarchy;
//! use canopus_data::xgc1_dataset;
//! use std::sync::Arc;
//!
//! // A Titan-like two-tier hierarchy: small fast tmpfs over big Lustre.
//! let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(
//!     1 << 20,      // 1 MiB tmpfs slice (proportional allocation)
//!     1 << 30,      // 1 GiB Lustre slice
//! ));
//! let canopus = Canopus::new(hierarchy, CanopusConfig::default());
//!
//! // Refactor + compress + place one variable.
//! let ds = canopus_data::xgc1_dataset(42);
//! let report = canopus.write("xgc1.bp", "dpot", &ds.mesh, &ds.data).unwrap();
//! assert!(report.products.len() >= 3); // base + deltas + meshes
//!
//! // Progressive retrieval: base first, then refine.
//! let reader = canopus.open("xgc1.bp").unwrap();
//! let mut prog = reader.progressive("dpot").unwrap();
//! let coarse_len = prog.data().len();
//! prog.refine().unwrap();                  // one accuracy level up
//! assert!(prog.data().len() > coarse_len);
//! ```
//!
//! The crate composes the substrate crates:
//! `canopus-mesh` (meshes), `canopus-refactor` (decimation/deltas),
//! `canopus-compress` (ZFP-like / SZ-like / FPC codecs),
//! `canopus-storage` (tiers + placement), `canopus-adios` (BP container),
//! `canopus-analytics` (blob detection).

mod cache;
pub mod campaign;
pub mod config;
pub mod error;
pub mod progressive;
pub mod read;
pub mod serve;
pub mod telemetry;
pub mod tiering;
pub mod write;

pub use campaign::Campaign;
pub use canopus_obs::{MetricsSnapshot, Registry};
pub use canopus_storage::FaultPlan;
pub use config::{CanopusConfig, RetryPolicy};
pub use error::CanopusError;
pub use progressive::ProgressiveReader;
pub use read::{CanopusReader, PhaseTiming, ReadOutcome, RegionStats};
pub use serve::{CanopusService, Priority, ServeOptions, ServeRequest, ServeResponse, Ticket};
pub use telemetry::{TelemetryConfig, TelemetryServer, TelemetrySources};
pub use tiering::{
    DecisionRing, MaintainReport, TierActionKind, TierDecision, TierMigrator, TieringPolicy,
};
pub use write::{Canopus, ProductReport, WriteReport};
