//! The read-side pipeline: retrieve → decompress → restore (paper Fig. 1,
//! right half), with the Fig. 9–11 phase timing breakdown.
//!
//! Two restore engines share one accounting surface:
//!
//! * the **serial** path (`pipeline_depth == 0`) fetches, decodes and
//!   applies each block in strict sequence — the reference
//!   implementation the equivalence tests pin the pipelined path to;
//! * the **pipelined** path runs a bounded prefetch stage (tier reads
//!   issued ahead of need through a crossbeam channel), a parallel
//!   decode pool, and a restore stage that scatters decoded chunks the
//!   moment they arrive instead of waiting for a full-level barrier.
//!
//! Both paths feed the same decoded-level LRU cache, so campaign
//! analytics that revisit a `(var, level)` pair skip tier I/O and
//! decompression entirely.
//!
//! Both engines are also fault-tolerant: every block fetch retries
//! fault-class failures (transient tier errors, down tiers, manifest
//! checksum mismatches) with capped exponential backoff under a
//! configurable [`RetryPolicy`]; when a delta stays unreachable past the
//! budget, a level walk returns the finest level it *could* restore with
//! [`ReadOutcome::degraded`] set instead of failing. Missing blocks are
//! never retried or absorbed — absent data is a hard error.

use crate::cache::{CachedLevel, LevelCache, Probe};
use crate::config::RetryPolicy;
use crate::error::CanopusError;
use crate::write::{decode_level_meta, spatial_chunks};
use bytes::Bytes;
use canopus_adios::{BlockMeta, BpFile, ChunkEntry};
use canopus_compress::{Chunked, Codec, CodecKind, ObservedCodec, CHUNKED_CODEC_ID_FLAG};
use canopus_mesh::geometry::Point2;
use canopus_mesh::Aabb;
use canopus_mesh::TriMesh;
use canopus_obs::{names, stage, stage_child, FieldValue, Registry, SpanContext};
use canopus_refactor::mapping::mapping_from_bytes;
use canopus_refactor::{restore_level, Estimator};
use crossbeam::channel;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The paper's per-phase timing: I/O (simulated), decompression and
/// restoration (measured wall time). Figs. 9a/10a/11a stack exactly these.
///
/// `total()` sums the three phases — the cost model of a serial pipeline.
/// `elapsed_secs` is the *measured wall clock* of the same operation
/// (summed per step for multi-step walks). When the pipelined engine
/// overlaps stages, the phase sums keep their per-stage meaning while
/// `elapsed_secs` shrinks below the wall-clock portion of `total()` —
/// the gap is exported as [`names::READ_OVERLAP`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    pub io_secs: f64,
    pub decompress_secs: f64,
    pub restore_secs: f64,
    /// Measured wall-clock seconds of the operation (phase sums above
    /// can exceed this when stages overlap, and `io_secs` is simulated
    /// device time rather than wall time).
    pub elapsed_secs: f64,
}

impl PhaseTiming {
    /// Serial-model cost: the sum of the three phases.
    pub fn total(&self) -> f64 {
        self.io_secs + self.decompress_secs + self.restore_secs
    }
}

impl std::ops::Add for PhaseTiming {
    type Output = PhaseTiming;
    fn add(self, o: Self) -> Self {
        Self {
            io_secs: self.io_secs + o.io_secs,
            decompress_secs: self.decompress_secs + o.decompress_secs,
            restore_secs: self.restore_secs + o.restore_secs,
            elapsed_secs: self.elapsed_secs + o.elapsed_secs,
        }
    }
}

impl std::ops::AddAssign for PhaseTiming {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

/// Accounting for a focused (region-of-interest) refinement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Chunks the delta was stored in.
    pub chunks_total: usize,
    /// Chunks applied at level accuracy (those intersecting the region,
    /// whether fetched from a tier or answered by the chunk cache).
    pub chunks_read: usize,
    /// Of [`chunks_read`](Self::chunks_read), chunks answered by the
    /// decoded-chunk cache — no tier fetch, no decode (sharded layout
    /// only).
    pub chunks_cached: usize,
    /// Compressed bytes transferred for the fetched chunks.
    pub bytes_read: u64,
    /// Fine vertices restored to level accuracy (the rest carry the
    /// estimate only).
    pub exact_vertices: usize,
}

/// Result of restoring a variable to some accuracy level.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// The mesh at the restored level.
    pub mesh: TriMesh,
    /// The restored data.
    pub data: Vec<f64>,
    /// Which level this is (0 = full accuracy).
    pub level: u32,
    /// The level actually restored — always equal to [`level`](Self::level).
    /// Meaningful together with [`degraded`](Self::degraded): when a
    /// requested finer level could not be reached (a tier down past the
    /// retry budget), this is the finest level the walk achieved.
    pub achieved_level: u32,
    /// Set when the walk could not reach the level it was asked for and
    /// returned the finest restorable one instead. Only fault-class
    /// failures (transient tier errors, down tiers, checksum mismatches
    /// that outlast the [`RetryPolicy`](crate::config::RetryPolicy))
    /// degrade; a missing block is still a hard error.
    pub degraded: bool,
    pub timing: PhaseTiming,
    /// Whether every vertex carries this level's accuracy. A partial
    /// [`CanopusReader::refine_region`] pass clears it (vertices outside
    /// the fetched chunks hold only the estimate), and refinements of a
    /// mixed-accuracy field inherit the mix. Only level-exact outcomes
    /// may enter or be answered from the decoded-level cache.
    pub level_exact: bool,
}

/// Reader over one Canopus BP file.
///
/// Level meshes and mappings are cached after first use: simulations
/// write many timesteps of many variables over the *same* decimated mesh
/// hierarchy, so analytics pays the geometry I/O once per campaign, not
/// once per read — matching how the paper accounts only the variable's
/// own I/O in Figs. 9–11.
/// Cached level geometry: `(var, level) -> (mesh, mapping)`.
type MetaCache = Mutex<HashMap<(String, u32), (TriMesh, Vec<u32>)>>;

/// Every read method takes `&self`: a single reader is shared by the
/// serving layer's worker pool ([`crate::serve::CanopusService`]) and
/// by ad-hoc scoped threads, with all mutable state behind interior
/// mutability.
///
/// ## Lock order
///
/// The read path holds at most one lock at a time, acquired in this
/// order and released before the next is taken:
///
/// 1. `meta_cache` — probe/fill of level geometry (dropped before any
///    tier I/O to fill it);
/// 2. `LevelCache::inner` — one [`Probe`]/insert per read (a leaf lock:
///    never held across I/O, decode or registry calls);
/// 3. registry instrument maps inside [`Registry`] — leaf locks of the
///    obs layer; hot-path hit/miss counters don't even reach them, they
///    bump pre-resolved atomic handles (`cache_hits` / `cache_misses`).
///
/// Storage locks (`Device`'s `RwLock`, per-tier stats) sit strictly
/// below all of these: the reader never calls into a tier while holding
/// any reader-level lock.
pub struct CanopusReader {
    file: BpFile,
    estimator: Estimator,
    meta_cache: MetaCache,
    /// Decoded-level LRU; disabled (capacity 0) unless configured.
    level_cache: LevelCache,
    /// Prefetch depth of the pipelined engine; 0 selects the serial one.
    pipeline_depth: u32,
    /// Retry budget for fault-class block-read failures.
    retry: RetryPolicy,
    obs: Arc<Registry>,
    /// Pre-resolved cache-accounting counters: plain atomic increments,
    /// so concurrent hits/misses never race through a read-modify-write
    /// or contend on the registry's name map.
    cache_hits: Arc<canopus_obs::Counter>,
    cache_misses: Arc<canopus_obs::Counter>,
    /// Recycled decode output buffers: after warmup the pipelined
    /// engine's decode workers allocate no output `Vec`s at all.
    decode_pool: BufferPool,
}

/// A small free list of decode output buffers.
///
/// Decode workers `take` a buffer sized to the block's element count
/// (reusing a retired buffer's allocation when one is available); the
/// restore stage `put`s buffers back once their values are scattered or
/// their level has applied. Hits and misses land on
/// [`names::READ_DECODE_BUF_HITS`] / [`names::READ_DECODE_BUF_MISSES`],
/// so steady-state zero-allocation behavior is observable.
struct BufferPool {
    bufs: Mutex<Vec<Vec<f64>>>,
    hits: Arc<canopus_obs::Counter>,
    misses: Arc<canopus_obs::Counter>,
}

/// Retired buffers kept around per reader. Bounds pool memory at
/// `DECODE_POOL_CAP * largest block` while comfortably covering the
/// deepest pipelines (depth + one per decode worker).
const DECODE_POOL_CAP: usize = 32;

impl BufferPool {
    fn new(obs: &Registry) -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
            hits: obs.counter(names::READ_DECODE_BUF_HITS),
            misses: obs.counter(names::READ_DECODE_BUF_MISSES),
        }
    }

    /// A zeroed buffer of exactly `n` elements, recycled if possible.
    fn take(&self, n: usize) -> Vec<f64> {
        let recycled = self.bufs.lock().pop();
        match recycled {
            Some(mut b) => {
                self.hits.inc();
                b.clear();
                b.resize(n, 0.0);
                b
            }
            None => {
                self.misses.inc();
                vec![0.0; n]
            }
        }
    }

    /// Retire a buffer for reuse (dropped instead once the pool is full).
    fn put(&self, b: Vec<f64>) {
        if b.capacity() == 0 {
            return;
        }
        let mut bufs = self.bufs.lock();
        if bufs.len() < DECODE_POOL_CAP {
            bufs.push(b);
        }
    }
}

impl CanopusReader {
    pub(crate) fn new(file: BpFile, estimator: Estimator) -> Self {
        let obs = Arc::clone(file.hierarchy().metrics());
        let cache_hits = obs.counter(names::READ_CACHE_HITS);
        let cache_misses = obs.counter(names::READ_CACHE_MISSES);
        let decode_pool = BufferPool::new(&obs);
        Self {
            file,
            estimator,
            meta_cache: Mutex::new(HashMap::new()),
            level_cache: LevelCache::new(0),
            pipeline_depth: 0,
            retry: RetryPolicy::new(),
            obs,
            cache_hits,
            cache_misses,
            decode_pool,
        }
    }

    /// Select the pipelined restore engine with `depth` tier reads in
    /// flight ahead of the decoder; 0 selects the serial reference
    /// engine.
    pub fn with_pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Retain up to `capacity` decoded `(var, level)` fields in an LRU
    /// cache so repeat reads skip tier I/O and decompression; 0
    /// disables caching. Resident memory is additionally bounded by an
    /// approximate byte budget (256 MiB unless overridden with
    /// [`Self::with_level_cache_bytes`]).
    pub fn with_level_cache(mut self, capacity: u32) -> Self {
        let max_bytes = self.level_cache.max_bytes();
        self.level_cache = LevelCache::new(capacity as usize);
        self.level_cache.set_max_bytes(max_bytes);
        self
    }

    /// Cap the decoded-level cache's resident size at approximately
    /// `max_bytes` (LRU entries are evicted past the budget; the most
    /// recent entry is always retained).
    pub fn with_level_cache_bytes(self, max_bytes: usize) -> Self {
        self.level_cache.set_max_bytes(max_bytes);
        self
    }

    /// Set the retry budget for fault-class block-read failures
    /// (transient tier errors, down tiers, checksum mismatches).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured prefetch depth (0 = serial engine).
    pub fn pipeline_depth(&self) -> u32 {
        self.pipeline_depth
    }

    /// The configured retry budget.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Probe the decoded-level cache with hit/miss accounting.
    /// No counters move while the cache is disabled. Accounting goes
    /// through the pre-resolved atomic handles, so probes from many
    /// worker threads never lose an increment.
    fn cache_lookup(&self, var: &str, level: u32) -> Option<CachedLevel> {
        if !self.level_cache.enabled() {
            return None;
        }
        let hit = self.level_cache.get(var, level);
        if hit.is_some() {
            self.cache_hits.inc();
        } else {
            self.cache_misses.inc();
        }
        hit
    }

    /// Probe the decoded-chunk cache (sharded layout only). Chunk
    /// residency is a side population of the level cache: no level
    /// hit/miss accounting moves.
    fn chunk_cache_get(&self, var: &str, level: u32, chunk: u32) -> Option<Arc<Vec<f64>>> {
        if !self.level_cache.enabled() {
            return None;
        }
        self.level_cache.get_chunk(var, level, chunk)
    }

    /// Retain one decoded spatial chunk for future region refinements
    /// (no-op when the cache is disabled).
    fn chunk_cache_insert(&self, var: &str, level: u32, chunk: u32, values: Arc<Vec<f64>>) {
        if !self.level_cache.enabled() {
            return;
        }
        self.level_cache.insert_chunk(var, level, chunk, values);
    }

    /// Retain a restored level for future reads (no-op when disabled).
    fn cache_store(&self, var: &str, level: u32, mesh: &TriMesh, data: &[f64], delta_rms: f64) {
        if !self.level_cache.enabled() {
            return;
        }
        self.level_cache.insert(
            var,
            level,
            CachedLevel {
                mesh: Arc::new(mesh.clone()),
                data: Arc::new(data.to_vec()),
                delta_rms,
            },
        );
    }

    /// Deep-copy a cached level into a caller-owned outcome. Timing is
    /// zero: a cache hit performs no I/O, decompression or restoration.
    fn materialize(level: u32, hit: &CachedLevel) -> ReadOutcome {
        ReadOutcome {
            mesh: (*hit.mesh).clone(),
            data: (*hit.data).clone(),
            level,
            achieved_level: level,
            degraded: false,
            timing: PhaseTiming::default(),
            level_exact: true,
        }
    }

    /// Read one block's payload with I/O accounting: records the
    /// simulated transfer time under [`names::READ_IO`] and the byte
    /// volume under [`names::READ_BYTES_IO`].
    ///
    /// Fault-class failures — transient tier errors, down tiers, and
    /// manifest checksum mismatches — are retried up to the configured
    /// [`RetryPolicy`] budget with capped exponential backoff and
    /// deterministic per-key jitter; each observed fault increments
    /// [`names::READ_FAULTS_INJECTED`] (and
    /// [`names::READ_CHECKSUM_FAILURES`] for integrity failures), each
    /// retry [`names::READ_RETRIES`]. Anything else — notably a missing
    /// block — fails immediately. I/O accounting only records the
    /// successful attempt.
    ///
    /// When tracing is armed the fetch runs inside a `read.block` span
    /// under `parent`, with one `read.fault` event per observed fault
    /// and one `read.retry` event (attempt number, backoff slept) per
    /// retry nested beneath it. Backoffs also land in the
    /// [`names::READ_RETRY_BACKOFF_HIST`] histogram either way.
    fn read_block_observed(
        &self,
        block: &BlockMeta,
        parent: SpanContext,
    ) -> Result<(Bytes, usize, canopus_storage::SimDuration), CanopusError> {
        let span = stage_child!(self.obs, parent, "read.block", key = block.key.as_str());
        let ctx = span.context();
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let t = Instant::now();
            match self.file.read_block(block) {
                Ok((bytes, tier, dt)) => {
                    self.obs
                        .timer(names::READ_IO)
                        .record(t.elapsed().as_secs_f64(), dt.seconds());
                    self.obs
                        .counter(names::READ_BYTES_IO)
                        .add(bytes.len() as u64);
                    self.obs.counter(names::READ_BLOCKS).inc();
                    return Ok((bytes, tier, dt));
                }
                Err(e) => {
                    let e = CanopusError::from(e);
                    if !e.is_availability_fault() {
                        return Err(e);
                    }
                    self.obs.counter(names::READ_FAULTS_INJECTED).inc();
                    if e.is_checksum_mismatch() {
                        self.obs.counter(names::READ_CHECKSUM_FAILURES).inc();
                    }
                    if self.obs.sink_enabled() {
                        self.obs.event_child(
                            "read.fault",
                            ctx,
                            vec![
                                ("key".to_string(), FieldValue::from(block.key.as_str())),
                                ("attempt".to_string(), FieldValue::from(attempt)),
                                ("cause".to_string(), FieldValue::from(e.to_string())),
                            ],
                        );
                    }
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    self.obs.counter(names::READ_RETRIES).inc();
                    let backoff = self.retry.backoff_s(&block.key, attempt);
                    self.obs
                        .histogram(names::READ_RETRY_BACKOFF_HIST)
                        .observe_secs(backoff);
                    if self.obs.sink_enabled() {
                        self.obs.event_child(
                            "read.retry",
                            ctx,
                            vec![
                                ("key".to_string(), FieldValue::from(block.key.as_str())),
                                ("attempt".to_string(), FieldValue::from(attempt)),
                                ("backoff_s".to_string(), FieldValue::from(backoff)),
                            ],
                        );
                    }
                    if backoff > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
                    }
                }
            }
        }
    }

    /// The shared observability registry (anchored on the hierarchy).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Pre-load every level's mesh + mapping for `var` into the cache
    /// (one-time campaign cost; subsequent reads skip geometry I/O).
    pub fn warm_metadata(&self, var: &str) -> Result<(), CanopusError> {
        for level in 0..self.num_levels() {
            self.read_level_meta(var, level, SpanContext::none())?;
        }
        Ok(())
    }

    pub fn file(&self) -> &BpFile {
        &self.file
    }

    /// Number of accuracy levels in the file.
    pub fn num_levels(&self) -> u32 {
        self.file.meta().num_levels
    }

    /// Decode one data block (base or delta) through its recorded codec.
    /// A set [`CHUNKED_CODEC_ID_FLAG`] bit marks a chunk-framed stream
    /// (the writer compressed it through [`Chunked`]); the flag is
    /// stripped to recover the payload codec, and the observed codec
    /// sits *inside* the chunk framing so per-chunk metrics still land
    /// under the real codec's name.
    ///
    /// Decodes run inside a `decode` span under `parent` (so the
    /// pipelined engine's worker-thread decodes still attach to their
    /// restore root), and per-block decode wall time feeds the
    /// [`names::READ_DECODE_HIST`] histogram.
    fn decode_block(
        &self,
        block: &BlockMeta,
        bytes: &[u8],
        parent: SpanContext,
    ) -> Result<Vec<f64>, CanopusError> {
        self.decode_payload(
            &block.key,
            block.codec_id,
            block.codec_param,
            block.elements as usize,
            bytes,
            parent,
        )
    }

    /// Codec-level decode shared by whole blocks and individual shard
    /// chunks (a shard's chunks each carry their own codec id, since
    /// chunk framing depends on the element count).
    fn decode_payload(
        &self,
        key: &str,
        codec_id: u8,
        codec_param: f64,
        elements: usize,
        bytes: &[u8],
        parent: SpanContext,
    ) -> Result<Vec<f64>, CanopusError> {
        let mut out = vec![0.0; elements];
        self.decode_payload_into(key, codec_id, codec_param, bytes, &mut out, parent)?;
        Ok(out)
    }

    /// Allocation-free core of [`Self::decode_payload`]: decodes straight
    /// into `out` (whose length is the element count) through a
    /// statically dispatched [`AnyCodec`] — no per-block codec box, no
    /// output `Vec`. The pipelined engine feeds recycled arena buffers
    /// here.
    fn decode_payload_into(
        &self,
        key: &str,
        codec_id: u8,
        codec_param: f64,
        bytes: &[u8],
        out: &mut [f64],
        parent: SpanContext,
    ) -> Result<(), CanopusError> {
        let _span = stage_child!(self.obs, parent, "decode", key = key);
        let chunked = codec_id & CHUNKED_CODEC_ID_FLAG != 0;
        let kind = match codec_id & !CHUNKED_CODEC_ID_FLAG {
            0 => CodecKind::Raw,
            1 => CodecKind::ZfpLike {
                tolerance: codec_param,
            },
            2 => CodecKind::SzLike {
                error_bound: codec_param,
            },
            3 => CodecKind::Fpc,
            id => {
                return Err(CanopusError::Invalid(format!("unknown codec id {id}")));
            }
        };
        let codec = ObservedCodec::new(kind.build_any(), Arc::clone(&self.obs));
        let t = Instant::now();
        if chunked {
            Chunked::for_decode(codec).decompress_into(bytes, out)?;
        } else {
            codec.decompress_into(bytes, out)?;
        }
        let decode_secs = t.elapsed().as_secs_f64();
        self.obs
            .timer(names::READ_DECOMPRESS)
            .record_wall(decode_secs);
        self.obs
            .histogram(names::READ_DECODE_HIST)
            .observe_secs(decode_secs);
        self.obs
            .counter(names::READ_VALUES_DECODED)
            .add(out.len() as u64);
        Ok(())
    }

    /// Decode a whole block to its values in storage order: a plain
    /// block decodes as one stream; a shard block decodes chunk by chunk
    /// (each through its own codec id) and concatenates in chunk-index
    /// order.
    fn decode_block_values(
        &self,
        block: &BlockMeta,
        bytes: &Bytes,
        parent: SpanContext,
    ) -> Result<Vec<f64>, CanopusError> {
        let mut values = vec![0.0; block.elements as usize];
        self.decode_block_values_into(block, bytes, &mut values, parent)?;
        Ok(values)
    }

    /// In-place [`Self::decode_block_values`]: shard chunks decode
    /// directly into their disjoint spans of `out` (no per-chunk staging
    /// `Vec`), and `out.len()` must equal the block's element count.
    fn decode_block_values_into(
        &self,
        block: &BlockMeta,
        bytes: &Bytes,
        out: &mut [f64],
        parent: SpanContext,
    ) -> Result<(), CanopusError> {
        if block.chunks.is_empty() {
            return self.decode_payload_into(
                &block.key,
                block.codec_id,
                block.codec_param,
                bytes,
                out,
                parent,
            );
        }
        let mut filled = 0usize;
        for e in &block.chunks {
            let end = (e.offset + e.len) as usize;
            if end > bytes.len() {
                return Err(CanopusError::Invalid(format!(
                    "shard {} chunk {} range {}+{} exceeds payload of {} B",
                    block.key,
                    e.chunk,
                    e.offset,
                    e.len,
                    bytes.len()
                )));
            }
            let elems = e.elements as usize;
            if filled + elems > out.len() {
                return Err(CanopusError::Invalid(format!(
                    "shard {} chunk elements overflow block: {} + {} > {}",
                    block.key,
                    filled,
                    elems,
                    out.len()
                )));
            }
            self.decode_payload_into(
                &block.key,
                e.codec_id,
                block.codec_param,
                &bytes[e.offset as usize..end],
                &mut out[filled..filled + elems],
                parent,
            )?;
            filled += elems;
        }
        if filled != out.len() {
            return Err(CanopusError::Invalid(format!(
                "shard {} chunks cover {} of {} elements",
                block.key,
                filled,
                out.len()
            )));
        }
        Ok(())
    }

    /// Ranged fetch of one spatial chunk out of a shard block, with the
    /// same I/O accounting and retry budget as
    /// [`Self::read_block_observed`] — only `entry.len` bytes move off
    /// the tier. Each successful fetch feeds
    /// [`names::READ_CHUNK_FETCH_HIST`]. Returns the chunk payload and
    /// its simulated I/O seconds.
    fn read_chunk_observed(
        &self,
        block: &BlockMeta,
        entry: &ChunkEntry,
        parent: SpanContext,
    ) -> Result<(Bytes, f64), CanopusError> {
        let span = stage_child!(self.obs, parent, "read.chunk", key = block.key.as_str());
        let ctx = span.context();
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let t = Instant::now();
            match self.file.read_block_range(block, entry) {
                Ok((bytes, _, dt)) => {
                    let wall = t.elapsed().as_secs_f64();
                    self.obs.timer(names::READ_IO).record(wall, dt.seconds());
                    self.obs
                        .histogram(names::READ_CHUNK_FETCH_HIST)
                        .observe_secs(wall);
                    self.obs
                        .counter(names::READ_BYTES_IO)
                        .add(bytes.len() as u64);
                    return Ok((bytes, dt.seconds()));
                }
                Err(e) => {
                    let e = CanopusError::from(e);
                    if !e.is_availability_fault() {
                        return Err(e);
                    }
                    self.obs.counter(names::READ_FAULTS_INJECTED).inc();
                    if e.is_checksum_mismatch() {
                        self.obs.counter(names::READ_CHECKSUM_FAILURES).inc();
                    }
                    if self.obs.sink_enabled() {
                        self.obs.event_child(
                            "read.fault",
                            ctx,
                            vec![
                                ("key".to_string(), FieldValue::from(block.key.as_str())),
                                ("chunk".to_string(), FieldValue::from(entry.chunk)),
                                ("attempt".to_string(), FieldValue::from(attempt)),
                                ("cause".to_string(), FieldValue::from(e.to_string())),
                            ],
                        );
                    }
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    self.obs.counter(names::READ_RETRIES).inc();
                    let backoff = self.retry.backoff_s(&block.key, attempt);
                    self.obs
                        .histogram(names::READ_RETRY_BACKOFF_HIST)
                        .observe_secs(backoff);
                    if backoff > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
                    }
                }
            }
        }
    }

    /// Read the auxiliary metadata of `level`: its mesh and (for non-base
    /// levels) the mapping to the coarser level. Returns the simulated
    /// I/O seconds alongside.
    fn read_level_meta(
        &self,
        var: &str,
        level: u32,
        parent: SpanContext,
    ) -> Result<(TriMesh, Vec<u32>, f64), CanopusError> {
        if let Some((mesh, mapping)) = self.meta_cache.lock().get(&(var.to_string(), level)) {
            return Ok((mesh.clone(), mapping.clone(), 0.0));
        }
        let v = self.file.inq_var(var)?;
        let block = v
            .metadata_for(level)
            .ok_or_else(|| CanopusError::Invalid(format!("no metadata for level {level}")))?
            .clone();
        let (bytes, _, dt) = self.read_block_observed(&block, parent)?;
        let (mesh_bytes, mapping_bytes) = decode_level_meta(&bytes)?;
        let mesh = canopus_mesh::io::from_binary(&mesh_bytes)
            .map_err(|e| CanopusError::MeshIo(e.to_string()))?;
        let mapping = mapping_from_bytes(&mapping_bytes).map_err(CanopusError::MeshIo)?;
        self.meta_cache
            .lock()
            .insert((var.to_string(), level), (mesh.clone(), mapping.clone()));
        Ok((mesh, mapping, dt.seconds()))
    }

    /// Read the base level: the paper's option (1), the fastest path.
    /// Served from the decoded-level cache when present.
    pub fn read_base(&self, var: &str) -> Result<ReadOutcome, CanopusError> {
        let base_level = self.num_levels() - 1;
        let root = stage!(self.obs, "read", var = var, level = base_level);
        if let Some(hit) = self.cache_lookup(var, base_level) {
            return Ok(Self::materialize(base_level, &hit));
        }
        self.read_base_uncached(var, root.context())
    }

    /// `read_base` without the cache probe, for callers that already
    /// accounted a lookup (the missed tail of `read_level`). Still
    /// stores the decoded base for future reads. Block fetches and
    /// decodes attach under `parent` (the caller's root `read` span).
    fn read_base_uncached(
        &self,
        var: &str,
        parent: SpanContext,
    ) -> Result<ReadOutcome, CanopusError> {
        let base_level = self.num_levels() - 1;
        let wall = Instant::now();
        let mut timing = PhaseTiming::default();

        let block = self
            .file
            .inq_var(var)?
            .base()
            .ok_or_else(|| CanopusError::Invalid(format!("no base block of {var}")))?
            .clone();
        let (bytes, _, io) = self.read_block_observed(&block, parent)?;
        timing.io_secs += io.seconds();

        let t = Instant::now();
        let data = self.decode_block(&block, &bytes, parent)?;
        timing.decompress_secs += t.elapsed().as_secs_f64();

        let (mesh, _, meta_io) = self.read_level_meta(var, base_level, parent)?;
        timing.io_secs += meta_io;
        timing.elapsed_secs = wall.elapsed().as_secs_f64();

        self.cache_store(var, base_level, &mesh, &data, 0.0);
        Ok(ReadOutcome {
            mesh,
            data,
            level: base_level,
            achieved_level: base_level,
            degraded: false,
            timing,
            level_exact: true,
        })
    }

    /// Read and decode the full delta refining into `finer`, whether it
    /// was stored as one block or as spatial chunks. Chunked deltas are
    /// scattered back to vertex order using the same deterministic Morton
    /// assignment the writer used (`fine_mesh` provides the geometry).
    fn read_delta_values(
        &self,
        var: &str,
        finer: u32,
        fine_mesh: &TriMesh,
        parent: SpanContext,
    ) -> Result<(Vec<f64>, PhaseTiming), CanopusError> {
        let mut timing = PhaseTiming::default();
        let v = self.file.inq_var(var)?;
        if let Some(block) = v.delta_to(finer).cloned() {
            let (bytes, _, io) = self.read_block_observed(&block, parent)?;
            timing.io_secs += io.seconds();
            let t = Instant::now();
            let delta = self.decode_block(&block, &bytes, parent)?;
            timing.decompress_secs += t.elapsed().as_secs_f64();
            return Ok((delta, timing));
        }
        let chunks: Vec<_> = v.delta_chunks_to(finer).into_iter().cloned().collect();
        if !chunks.is_empty() {
            let assignment = spatial_chunks(fine_mesh, chunks.len() as u32);
            let mut delta = vec![0.0f64; fine_mesh.num_vertices()];
            for (block, ids) in chunks.iter().zip(&assignment) {
                let (bytes, _, io) = self.read_block_observed(block, parent)?;
                timing.io_secs += io.seconds();
                let t = Instant::now();
                let values = self.decode_block(block, &bytes, parent)?;
                timing.decompress_secs += t.elapsed().as_secs_f64();
                if values.len() != ids.len() {
                    return Err(CanopusError::Invalid(format!(
                        "chunk {} decoded {} values for {} vertices",
                        block.key,
                        values.len(),
                        ids.len()
                    )));
                }
                for (&vid, &val) in ids.iter().zip(&values) {
                    delta[vid as usize] = val;
                }
            }
            return Ok((delta, timing));
        }
        // Sharded layout: each shard object carries several Morton
        // chunks; a full-level read fetches whole shards (one object
        // read each) and scatters chunk by chunk through the same
        // deterministic assignment.
        let shards: Vec<_> = v.delta_shards_to(finer).into_iter().cloned().collect();
        if shards.is_empty() {
            return Err(CanopusError::Invalid(format!(
                "no delta to level {finer} of {var}"
            )));
        }
        let total_chunks: usize = shards.iter().map(|b| b.chunks.len()).sum();
        let assignment = spatial_chunks(fine_mesh, total_chunks as u32);
        let mut delta = vec![0.0f64; fine_mesh.num_vertices()];
        for block in &shards {
            let (bytes, _, io) = self.read_block_observed(block, parent)?;
            timing.io_secs += io.seconds();
            let t = Instant::now();
            let values = self.decode_block_values(block, &bytes, parent)?;
            timing.decompress_secs += t.elapsed().as_secs_f64();
            scatter_shard_values(block, &values, &assignment, &mut delta)?;
        }
        Ok((delta, timing))
    }

    /// Refine an already-restored level by one step: read + decompress
    /// `delta^{(l-1)-l}`, read the finer mesh + mapping, and restore
    /// (paper options (2)/(3)).
    ///
    /// Returns the finer outcome plus the RMS of the applied delta (the
    /// paper's suggested automatic termination criterion). A cached
    /// finer level short-circuits the whole step with zero timing.
    pub fn refine_once(
        &self,
        var: &str,
        current: &ReadOutcome,
    ) -> Result<(ReadOutcome, f64), CanopusError> {
        self.refine_once_ctx(var, current, SpanContext::none())
    }

    /// [`Self::refine_once`] with the block fetch / decode spans of the
    /// step attached under `parent` — the serial restore walk and the
    /// progressive reader pass their enclosing span so serial trees stay
    /// connected like pipelined ones.
    pub(crate) fn refine_once_ctx(
        &self,
        var: &str,
        current: &ReadOutcome,
        parent: SpanContext,
    ) -> Result<(ReadOutcome, f64), CanopusError> {
        if current.level == 0 {
            return Err(CanopusError::Invalid(
                "already at full accuracy".to_string(),
            ));
        }
        let finer = current.level - 1;
        // The cache holds canonical level-exact fields only. Refining a
        // mixed-accuracy `current` (from a partial region pass) must
        // neither answer from the cache — the hit would silently replace
        // the caller's field with the canonical one — nor store its
        // contaminated result as the canonical level.
        if current.level_exact {
            if let Some(hit) = self.cache_lookup(var, finer) {
                let rms = hit.delta_rms;
                return Ok((Self::materialize(finer, &hit), rms));
            }
        }
        let wall = Instant::now();

        let (fine_mesh, mapping, meta_io) = self.read_level_meta(var, finer, parent)?;
        let (delta, mut timing) = self.read_delta_values(var, finer, &fine_mesh, parent)?;
        timing.io_secs += meta_io;

        let t = Instant::now();
        let data = restore_level(
            &fine_mesh,
            &delta,
            &current.mesh,
            &current.data,
            &mapping,
            self.estimator,
        );
        timing.restore_secs += t.elapsed().as_secs_f64();
        self.obs
            .timer(names::READ_RESTORE)
            .record_wall(timing.restore_secs);
        self.obs.counter(names::READ_REFINEMENTS).inc();

        let delta_rms = if delta.is_empty() {
            0.0
        } else {
            (delta.iter().map(|d| d * d).sum::<f64>() / delta.len() as f64).sqrt()
        };
        timing.elapsed_secs = wall.elapsed().as_secs_f64();

        if current.level_exact {
            self.cache_store(var, finer, &fine_mesh, &data, delta_rms);
        }
        Ok((
            ReadOutcome {
                mesh: fine_mesh,
                data,
                level: finer,
                achieved_level: finer,
                degraded: false,
                timing,
                level_exact: current.level_exact,
            },
            delta_rms,
        ))
    }

    /// Focused data retrieval (paper §III-E / §IV-D): refine one level,
    /// but fetch only the delta chunks whose vertices intersect `region`.
    /// Vertices outside the fetched chunks are restored from the estimate
    /// alone (coarse accuracy), giving a mixed-accuracy field that is
    /// level-exact inside the region of interest.
    ///
    /// Requires the file to have been written with `delta_chunks > 1`;
    /// unchunked deltas degrade gracefully to a full refinement
    /// (`chunks_read == chunks_total == 1`).
    pub fn refine_region(
        &self,
        var: &str,
        current: &ReadOutcome,
        region: Aabb,
    ) -> Result<(ReadOutcome, RegionStats), CanopusError> {
        if current.level == 0 {
            return Err(CanopusError::Invalid(
                "already at full accuracy".to_string(),
            ));
        }
        let finer = current.level - 1;
        let root = stage!(self.obs, "refine_region", var = var, level = finer);
        let ctx = root.context();
        let wall = Instant::now();
        let mut timing = PhaseTiming::default();

        let (fine_mesh, mapping, meta_io) = self.read_level_meta(var, finer, ctx)?;
        timing.io_secs += meta_io;
        let n = fine_mesh.num_vertices();

        let v = self.file.inq_var(var)?;
        let chunk_blocks: Vec<_> = v.delta_chunks_to(finer).into_iter().cloned().collect();
        let shard_blocks: Vec<_> = if chunk_blocks.is_empty() {
            v.delta_shards_to(finer).into_iter().cloned().collect()
        } else {
            Vec::new()
        };

        let mut delta = vec![0.0f64; n];
        let mut exact = vec![false; n];
        let mut stats = RegionStats::default();

        if !shard_blocks.is_empty() {
            // Sharded layout: plan purely from the manifest's chunk
            // index — no geometry pass, no whole-object reads. Only the
            // chunks whose recorded bounding boxes intersect the region
            // move, each as a ranged read of its shard; the decoded-chunk
            // cache answers revisited chunks with zero I/O.
            let total: usize = shard_blocks.iter().map(|b| b.chunks.len()).sum();
            stats.chunks_total = total;
            let assignment = spatial_chunks(&fine_mesh, total as u32);
            let mut cached: Vec<(u32, Arc<Vec<f64>>)> = Vec::new();
            let mut plan: Vec<(&BlockMeta, &ChunkEntry)> = Vec::new();
            for b in &shard_blocks {
                for e in &b.chunks {
                    let bbox = Aabb::from_points([
                        Point2::new(e.bbox[0], e.bbox[1]),
                        Point2::new(e.bbox[2], e.bbox[3]),
                    ]);
                    if !bbox.intersects(&region) {
                        continue;
                    }
                    if let Some(values) = self.chunk_cache_get(var, finer, e.chunk) {
                        cached.push((e.chunk, values));
                    } else {
                        plan.push((b, e));
                    }
                }
            }
            let mut payloads: Vec<(&BlockMeta, &ChunkEntry, Bytes)> =
                Vec::with_capacity(plan.len());
            for (b, e) in plan {
                let (bytes, io) = self.read_chunk_observed(b, e, ctx)?;
                timing.io_secs += io;
                stats.bytes_read += bytes.len() as u64;
                payloads.push((b, e, bytes));
            }
            // Decode the fetched chunks in parallel on the worker pool.
            let t = Instant::now();
            let decoded: Vec<(u32, Vec<f64>)> = payloads
                .par_iter()
                .map(|(b, e, bytes)| {
                    let values = self.decode_payload(
                        &b.key,
                        e.codec_id,
                        b.codec_param,
                        e.elements as usize,
                        bytes,
                        ctx,
                    )?;
                    Ok((e.chunk, values))
                })
                .collect::<Result<_, CanopusError>>()?;
            timing.decompress_secs += t.elapsed().as_secs_f64();
            let mut scatter = |chunk: u32, values: &[f64]| -> Result<(), CanopusError> {
                let ids = assignment.get(chunk as usize).ok_or_else(|| {
                    CanopusError::Invalid(format!(
                        "chunk {chunk} beyond the {}-chunk assignment",
                        assignment.len()
                    ))
                })?;
                if values.len() != ids.len() {
                    return Err(CanopusError::Invalid(format!(
                        "chunk {chunk} decoded {} values for {} vertices",
                        values.len(),
                        ids.len()
                    )));
                }
                for (&vid, &val) in ids.iter().zip(values) {
                    delta[vid as usize] = val;
                    exact[vid as usize] = true;
                }
                Ok(())
            };
            for (chunk, values) in decoded {
                let values = Arc::new(values);
                scatter(chunk, &values)?;
                self.chunk_cache_insert(var, finer, chunk, Arc::clone(&values));
                stats.chunks_read += 1;
            }
            for (chunk, values) in &cached {
                scatter(*chunk, values)?;
                stats.chunks_read += 1;
            }
            stats.chunks_cached = cached.len();
        } else if chunk_blocks.is_empty() {
            // Unchunked file: a region read degrades to a full refinement.
            let (full, dt) = self.read_delta_values(var, finer, &fine_mesh, ctx)?;
            timing += dt;
            delta.copy_from_slice(&full);
            exact.fill(true);
            stats.chunks_total = 1;
            stats.chunks_read = 1;
            stats.bytes_read = v.delta_to(finer).map_or(0, |b| b.stored_bytes);
        } else {
            let assignment = spatial_chunks(&fine_mesh, chunk_blocks.len() as u32);
            stats.chunks_total = chunk_blocks.len();
            for (block, ids) in chunk_blocks.iter().zip(&assignment) {
                let bbox = Aabb::from_points(ids.iter().map(|&vid| fine_mesh.point(vid)));
                if !bbox.intersects(&region) {
                    continue;
                }
                let (bytes, _, io) = self.read_block_observed(block, ctx)?;
                timing.io_secs += io.seconds();
                stats.bytes_read += bytes.len() as u64;
                let t = Instant::now();
                let values = self.decode_block(block, &bytes, ctx)?;
                timing.decompress_secs += t.elapsed().as_secs_f64();
                if values.len() != ids.len() {
                    return Err(CanopusError::Invalid(format!(
                        "chunk {} decoded {} values for {} vertices",
                        block.key,
                        values.len(),
                        ids.len()
                    )));
                }
                for (&vid, &val) in ids.iter().zip(&values) {
                    delta[vid as usize] = val;
                    exact[vid as usize] = true;
                }
                stats.chunks_read += 1;
            }
        }
        stats.exact_vertices = exact.iter().filter(|&&e| e).count();
        // Chunk-planning accounting, for every layout: planned = the
        // level's chunk population, fetched = chunks that moved bytes
        // (cache-served chunks count as skipped I/O).
        let fetched = (stats.chunks_read - stats.chunks_cached) as u64;
        self.obs
            .counter(names::READ_CHUNKS_PLANNED)
            .add(stats.chunks_total as u64);
        self.obs.counter(names::READ_CHUNKS_FETCHED).add(fetched);
        self.obs
            .counter(names::READ_CHUNKS_SKIPPED)
            .add(stats.chunks_total as u64 - fetched);

        let t = Instant::now();
        let data = restore_level(
            &fine_mesh,
            &delta,
            &current.mesh,
            &current.data,
            &mapping,
            self.estimator,
        );
        timing.restore_secs += t.elapsed().as_secs_f64();
        self.obs
            .timer(names::READ_RESTORE)
            .record_wall(timing.restore_secs);
        self.obs.counter(names::READ_REGION_REFINEMENTS).inc();
        self.obs.event_child(
            "read.region",
            ctx,
            vec![
                ("var".to_string(), FieldValue::from(var)),
                ("level".to_string(), FieldValue::from(finer as u64)),
                (
                    "chunks_read".to_string(),
                    FieldValue::from(stats.chunks_read as u64),
                ),
                (
                    "chunks_total".to_string(),
                    FieldValue::from(stats.chunks_total as u64),
                ),
            ],
        );
        timing.elapsed_secs = wall.elapsed().as_secs_f64();

        Ok((
            ReadOutcome {
                mesh: fine_mesh,
                data,
                level: finer,
                achieved_level: finer,
                degraded: false,
                timing,
                // Exact only when every chunk was fetched (a region
                // covering the mesh, or the unchunked fallback) on top
                // of an already-exact field.
                level_exact: current.level_exact && stats.chunks_read == stats.chunks_total,
            },
            stats,
        ))
    }

    /// Restore straight to `target_level` (0 = full accuracy),
    /// accumulating phase timings across all steps — what Figs. 9b/10b/11b
    /// measure for `target_level = 0`.
    ///
    /// Consults the decoded-level cache first: an exact hit answers with
    /// zero I/O, and otherwise the walk starts from the nearest cached
    /// coarser level (or the base). The walk runs on the pipelined
    /// engine unless `pipeline_depth` is 0.
    pub fn read_level(&self, var: &str, target_level: u32) -> Result<ReadOutcome, CanopusError> {
        let n = self.num_levels();
        if target_level >= n {
            return Err(CanopusError::Invalid(format!(
                "level {target_level} out of range (N = {n})"
            )));
        }
        // The root of this call's span tree: every block fetch, decode
        // (including decode-pool workers on other threads), restore and
        // retry/fault event of the walk nests beneath it.
        let root = stage!(self.obs, "read", var = var, level = target_level);
        let ctx = root.context();
        let base_level = n - 1;
        // One accounting event per call: a hit when any cached level —
        // the exact target or a coarser starting point — answers, a
        // single miss otherwise (the base read below skips its own
        // probe, so a miss is never counted twice). The probe classifies
        // exact-vs-coarser-vs-miss under a single cache lock, so the
        // decision and its accounting stay consistent under contention.
        let start = if self.level_cache.enabled() {
            match self.level_cache.probe(var, target_level, base_level) {
                Probe::Exact(hit) => {
                    self.cache_hits.inc();
                    return Ok(Self::materialize(target_level, &hit));
                }
                Probe::Coarser(level, hit) => {
                    self.cache_hits.inc();
                    Self::materialize(level, &hit)
                }
                Probe::Miss => {
                    self.cache_misses.inc();
                    self.read_base_uncached(var, ctx)?
                }
            }
        } else {
            self.read_base_uncached(var, ctx)?
        };
        if start.level == target_level {
            return Ok(start);
        }
        if self.pipeline_depth == 0 {
            self.restore_walk_serial(var, start, target_level, ctx)
        } else {
            self.restore_walk_pipelined(var, start, target_level, ctx)
        }
    }

    /// `read_level` forced onto the serial engine and always starting
    /// from the base — the baseline the pipelined engine is benchmarked
    /// and equivalence-tested against. The per-step level cache still
    /// applies when enabled.
    pub fn read_level_serial(
        &self,
        var: &str,
        target_level: u32,
    ) -> Result<ReadOutcome, CanopusError> {
        let n = self.num_levels();
        if target_level >= n {
            return Err(CanopusError::Invalid(format!(
                "level {target_level} out of range (N = {n})"
            )));
        }
        let root = stage!(self.obs, "read", var = var, level = target_level);
        let start = self.read_base(var)?;
        if start.level == target_level {
            return Ok(start);
        }
        self.restore_walk_serial(var, start, target_level, root.context())
    }

    /// Mark `outcome` as the degraded answer to a request for
    /// `target_level`: count it, emit a `read.degraded` event, and set
    /// the flags. The data itself is exact at `outcome.level` — only the
    /// *request* fell short.
    fn degrade(
        &self,
        var: &str,
        mut outcome: ReadOutcome,
        target_level: u32,
        cause: &CanopusError,
        parent: SpanContext,
    ) -> ReadOutcome {
        self.obs.counter(names::READ_DEGRADED_RESTORES).inc();
        self.obs.event_child(
            "read.degraded",
            parent,
            vec![
                ("var".to_string(), FieldValue::from(var)),
                (
                    "requested_level".to_string(),
                    FieldValue::from(target_level as u64),
                ),
                (
                    "achieved_level".to_string(),
                    FieldValue::from(outcome.level as u64),
                ),
                ("cause".to_string(), FieldValue::from(cause.to_string())),
            ],
        );
        outcome.achieved_level = outcome.level;
        outcome.degraded = true;
        outcome
    }

    /// The serial reference engine: fetch → decode → restore each level
    /// in strict sequence. A level left unreachable by fault-class
    /// failures (after [`Self::read_block_observed`]'s retries) degrades
    /// the walk: the finest restored level is returned with
    /// [`ReadOutcome::degraded`] set rather than an error.
    fn restore_walk_serial(
        &self,
        var: &str,
        start: ReadOutcome,
        target_level: u32,
        ctx: SpanContext,
    ) -> Result<ReadOutcome, CanopusError> {
        let mut outcome = start;
        while outcome.level > target_level {
            // Same per-level "restore" child the pipelined walk emits, so
            // both engines produce one span-tree shape (the serial span
            // covers fetch + decode + apply, the pipelined one only the
            // apply — the fetch/decode time lives in sibling spans).
            let span = stage_child!(
                self.obs,
                ctx,
                "restore",
                var = var,
                level = outcome.level - 1
            );
            let refined = self.refine_once_ctx(var, &outcome, ctx);
            drop(span);
            match refined {
                Ok((next, _)) => {
                    let timing = outcome.timing + next.timing;
                    outcome = next;
                    outcome.timing = timing;
                }
                Err(e) if e.is_availability_fault() => {
                    return Ok(self.degrade(var, outcome, target_level, &e, ctx));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(outcome)
    }

    /// The pipelined restore engine. Three stages run concurrently,
    /// connected by bounded channels:
    ///
    /// 1. **Prefetch** — one producer thread walks the restore plan in
    ///    fetch order, issuing tier reads up to `pipeline_depth` blocks
    ///    ahead of the decoder ([`names::READ_PREFETCH_DEPTH`] tracks
    ///    the queue, its `_PEAK` twin the high-water mark);
    /// 2. **Decode** — a worker pool decompresses payloads in parallel,
    ///    in whatever order they arrive;
    /// 3. **Restore** — the calling thread scatters decoded chunks into
    ///    per-level delta buffers and applies each level the moment its
    ///    last chunk lands, instead of waiting for the whole walk:
    ///    level `l` restores while level `l - 1` is still in flight.
    ///
    /// Phase sums in the returned [`PhaseTiming`] keep their serial
    /// meaning, so the overlap won shows up as `total() - elapsed_secs`
    /// and is exported under [`names::READ_OVERLAP`]. Every restored
    /// level enters the decoded-level cache.
    ///
    /// Fault-class failures that outlast the per-block retry budget stop
    /// the prefetcher; the levels already complete still apply and the
    /// walk returns the finest of them with [`ReadOutcome::degraded`]
    /// set (see [`Self::degrade`]) instead of erroring.
    fn restore_walk_pipelined(
        &self,
        var: &str,
        start: ReadOutcome,
        target_level: u32,
        ctx: SpanContext,
    ) -> Result<ReadOutcome, CanopusError> {
        let wall = Instant::now();
        let mut timing = start.timing;

        // Plan the walk and pre-load level geometry (cached across reads
        // of the same campaign, so this is cheap after the first walk).
        let plan = self.file.restore_plan(var, start.level, target_level)?;
        let v = self.file.inq_var(var)?;
        let mut states: Vec<LevelState> = Vec::with_capacity(plan.len());
        let mut jobs: Vec<RestoreJob> = Vec::new();
        // A fault-class failure while loading a level's geometry truncates
        // the plan there: coarser levels still restore, and the walk
        // reports itself degraded instead of failing.
        let mut planning_fault: Option<CanopusError> = None;
        for (level_idx, (finer, blocks)) in plan.into_iter().enumerate() {
            let monolithic = v.delta_to(finer).is_some();
            let (fine_mesh, mapping, meta_io) = match self.read_level_meta(var, finer, ctx) {
                Ok(meta) => meta,
                Err(e) if e.is_availability_fault() => {
                    planning_fault = Some(e);
                    break;
                }
                Err(e) => return Err(e),
            };
            timing.io_secs += meta_io;
            // Shard blocks span several Morton chunks each; the
            // assignment covers the level's full chunk population, not
            // the block count.
            let sharded = !monolithic
                && blocks
                    .first()
                    .map(|b| !b.chunks.is_empty())
                    .unwrap_or(false);
            let assignment = if monolithic {
                None
            } else if sharded {
                let total: usize = blocks.iter().map(|b| b.chunks.len()).sum();
                Some(spatial_chunks(&fine_mesh, total as u32))
            } else {
                Some(spatial_chunks(&fine_mesh, blocks.len() as u32))
            };
            let n = fine_mesh.num_vertices();
            states.push(LevelState {
                finer,
                fine_mesh,
                mapping,
                delta: vec![0.0; n],
                assignment,
                remaining: blocks.len(),
            });
            for (chunk_idx, block) in blocks.into_iter().enumerate() {
                jobs.push(RestoreJob {
                    level_idx,
                    chunk_idx,
                    block,
                });
            }
        }
        let total_jobs = jobs.len();
        if total_jobs == 0 {
            let out = ReadOutcome { timing, ..start };
            return Ok(match planning_fault {
                Some(cause) if out.level > target_level => {
                    self.degrade(var, out, target_level, &cause, ctx)
                }
                _ => out,
            });
        }

        let depth = self.pipeline_depth.max(1) as usize;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(total_jobs);

        let (fetch_tx, fetch_rx) = channel::bounded::<Fetched>(depth);
        // Sized so decode-pool sends can never block: an early error
        // return on the restore side then cannot deadlock the workers,
        // which simply drain the fetch queue and exit.
        let (done_tx, done_rx) = channel::bounded::<Decoded>(total_jobs + workers + 1);
        let depth_gauge = self.obs.gauge(names::READ_PREFETCH_DEPTH);
        let peak_gauge = self.obs.gauge(names::READ_PREFETCH_DEPTH_PEAK);

        let jobs = &jobs;
        let depth_gauge = &depth_gauge;

        type WalkResult = Result<(ReadOutcome, Option<CanopusError>), CanopusError>;
        let outcome = std::thread::scope(|s| -> WalkResult {
            // Stage 1: prefetch. Owns `fetch_tx`; dropping it on exit is
            // what lets the decode pool drain out and shut down.
            s.spawn(move || {
                for (idx, job) in jobs.iter().enumerate() {
                    let fetched = self
                        .read_block_observed(&job.block, ctx)
                        .map(|(bytes, _, io)| (idx, bytes, io.seconds(), Instant::now()));
                    let stop = fetched.is_err();
                    depth_gauge.add(1);
                    peak_gauge.set_max(depth_gauge.get());
                    if fetch_tx.send(fetched).is_err() {
                        depth_gauge.sub(1);
                        break;
                    }
                    if stop {
                        break;
                    }
                }
            });

            // Stage 2: decode pool. The receiver is multi-consumer, so
            // each worker holds its own clone of the shared queue;
            // workers exit when the producer is done and the queue is
            // drained (recv disconnects).
            for _ in 0..workers {
                let done_tx = done_tx.clone();
                let fetch_rx = fetch_rx.clone();
                let queue_wait = self.obs.histogram(names::READ_QUEUE_WAIT_HIST);
                s.spawn(move || {
                    while let Ok(fetched) = fetch_rx.recv() {
                        depth_gauge.sub(1);
                        let decoded = fetched.and_then(|(idx, bytes, io, enqueued)| {
                            queue_wait.observe_secs(enqueued.elapsed().as_secs_f64());
                            let t = Instant::now();
                            let mut values =
                                self.decode_pool.take(jobs[idx].block.elements as usize);
                            match self.decode_block_values_into(
                                &jobs[idx].block,
                                &bytes,
                                &mut values,
                                ctx,
                            ) {
                                Ok(()) => Ok((idx, values, io, t.elapsed().as_secs_f64())),
                                Err(e) => {
                                    self.decode_pool.put(values);
                                    Err(e)
                                }
                            }
                        });
                        if done_tx.send(decoded).is_err() {
                            break;
                        }
                    }
                });
            }
            // The workers hold the only senders from here on: when a
            // fault stops the prefetcher early, their exit is what
            // disconnects `done_rx` and ends the drain below. Keeping
            // this handle alive would block the drain forever.
            drop(done_tx);

            // Stage 3: scatter + in-order restore on this thread. On a
            // fault-class failure the prefetcher has already stopped and
            // dropped its queue; keep draining `done_rx` so every level
            // whose blocks all landed before the fault still applies,
            // then return the finest of them as a degraded outcome.
            let mut cur = start;
            let mut next_level = 0usize;
            let mut fault: Option<CanopusError> = None;
            while next_level < states.len() {
                let decoded = match done_rx.recv() {
                    Ok(decoded) => decoded,
                    // Pipeline drained without completing the walk.
                    Err(_) => break,
                };
                let (idx, values, io, decompress) = match decoded {
                    Ok(decoded) => decoded,
                    Err(e) if e.is_availability_fault() => {
                        fault = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                timing.io_secs += io;
                timing.decompress_secs += decompress;
                let job = &jobs[idx];
                let state = &mut states[job.level_idx];
                match &state.assignment {
                    None => {
                        if values.len() != state.delta.len() {
                            return Err(CanopusError::Invalid(format!(
                                "delta {} decoded {} values for {} vertices",
                                job.block.key,
                                values.len(),
                                state.delta.len()
                            )));
                        }
                        // The monolithic delta adopts the decoded buffer
                        // wholesale; retire the placeholder it replaces.
                        self.decode_pool
                            .put(std::mem::replace(&mut state.delta, values));
                    }
                    Some(assignment) if !job.block.chunks.is_empty() => {
                        scatter_shard_values(&job.block, &values, assignment, &mut state.delta)?;
                        self.decode_pool.put(values);
                    }
                    Some(assignment) => {
                        let ids = &assignment[job.chunk_idx];
                        if values.len() != ids.len() {
                            return Err(CanopusError::Invalid(format!(
                                "chunk {} decoded {} values for {} vertices",
                                job.block.key,
                                values.len(),
                                ids.len()
                            )));
                        }
                        for (&vid, &val) in ids.iter().zip(&values) {
                            state.delta[vid as usize] = val;
                        }
                        self.decode_pool.put(values);
                    }
                }
                state.remaining -= 1;

                // Apply every level whose delta is now complete, in
                // strict coarse-to-fine order.
                while next_level < states.len() && states[next_level].remaining == 0 {
                    let st = &mut states[next_level];
                    let span = stage_child!(self.obs, ctx, "restore", var = var, level = st.finer);
                    let t = Instant::now();
                    let data = restore_level(
                        &st.fine_mesh,
                        &st.delta,
                        &cur.mesh,
                        &cur.data,
                        &st.mapping,
                        self.estimator,
                    );
                    let restore = t.elapsed().as_secs_f64();
                    drop(span);
                    timing.restore_secs += restore;
                    self.obs.timer(names::READ_RESTORE).record_wall(restore);
                    self.obs.counter(names::READ_REFINEMENTS).inc();
                    let delta = std::mem::take(&mut st.delta);
                    let delta_rms = if delta.is_empty() {
                        0.0
                    } else {
                        (delta.iter().map(|d| d * d).sum::<f64>() / delta.len() as f64).sqrt()
                    };
                    self.decode_pool.put(delta);
                    // `st` is done once its level applies; steal the mesh
                    // instead of cloning it for every restored level.
                    cur = ReadOutcome {
                        mesh: std::mem::take(&mut st.fine_mesh),
                        data,
                        level: st.finer,
                        achieved_level: st.finer,
                        degraded: false,
                        timing: PhaseTiming::default(),
                        // The walk starts from `read_level`'s cache hit
                        // or base read, both level-exact.
                        level_exact: true,
                    };
                    self.cache_store(var, cur.level, &cur.mesh, &cur.data, delta_rms);
                    next_level += 1;
                }
            }
            if next_level < states.len() && fault.is_none() {
                return Err(CanopusError::Invalid(
                    "restore pipeline terminated early".to_string(),
                ));
            }
            Ok((cur, fault))
        });

        let (mut outcome, fault) = outcome?;
        timing.elapsed_secs += wall.elapsed().as_secs_f64();
        outcome.timing = timing;
        let overlap = (timing.total() - timing.elapsed_secs).max(0.0);
        self.obs.timer(names::READ_OVERLAP).record_wall(overlap);
        self.obs.counter(names::READ_PIPELINED_RESTORES).inc();
        if let Some(cause) = fault.or(planning_fault) {
            if outcome.level > target_level {
                return Ok(self.degrade(var, outcome, target_level, &cause, ctx));
            }
        }
        Ok(outcome)
    }

    /// Conservative bounds on the values of `var` restored to `level`,
    /// computed from block metadata alone — no data I/O. The ADIOS-style
    /// query pushdown: `Estimate` is a convex combination of coarser
    /// values, so `range(l) ⊆ [range(l+1).min + delta_l.min,
    /// range(l+1).max + delta_l.max]`, seeded by the base block's exact
    /// min/max.
    pub fn value_bounds(&self, var: &str, level: u32) -> Result<(f64, f64), CanopusError> {
        let n = self.num_levels();
        if level >= n {
            return Err(CanopusError::Invalid(format!(
                "level {level} out of range (N = {n})"
            )));
        }
        let v = self.file.inq_var(var)?;
        let base = v
            .base()
            .ok_or_else(|| CanopusError::Invalid(format!("no base block of {var}")))?;
        let (mut lo, mut hi) = (base.min, base.max);
        for l in (level..n - 1).rev() {
            let (dmin, dmax) = if let Some(block) = v.delta_to(l) {
                (block.min, block.max)
            } else {
                let mut parts = v.delta_chunks_to(l);
                if parts.is_empty() {
                    // Shard blocks carry the fold of their chunk bounds.
                    parts = v.delta_shards_to(l);
                }
                if parts.is_empty() {
                    return Err(CanopusError::Invalid(format!(
                        "no delta to level {l} of {var}"
                    )));
                }
                parts
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), c| {
                        (a.min(c.min), b.max(c.max))
                    })
            };
            lo += dmin;
            hi += dmax;
        }
        Ok((lo, hi))
    }

    /// Whether any value of `var` at `level` *may* fall inside
    /// `[lo, hi]`. `false` is definitive (the metadata bounds exclude the
    /// interval); `true` means "possibly — read to know". Lets analytics
    /// skip whole files/timesteps without touching their payloads.
    pub fn query_range(
        &self,
        var: &str,
        level: u32,
        lo: f64,
        hi: f64,
    ) -> Result<bool, CanopusError> {
        let (bmin, bmax) = self.value_bounds(var, level)?;
        Ok(bmax >= lo && bmin <= hi)
    }

    /// Start a progressive exploration session for `var`.
    pub fn progressive(
        &self,
        var: &str,
    ) -> Result<crate::progressive::ProgressiveReader<'_>, CanopusError> {
        crate::progressive::ProgressiveReader::start(self, var)
    }
}

/// Scatter a shard block's concatenated chunk values (chunk-index
/// order, as [`CanopusReader::decode_block_values`] produces them) into
/// a full-level delta buffer through the deterministic Morton
/// assignment. Shared by the serial and pipelined restore engines.
fn scatter_shard_values(
    block: &BlockMeta,
    values: &[f64],
    assignment: &[Vec<u32>],
    delta: &mut [f64],
) -> Result<(), CanopusError> {
    let mut pos = 0usize;
    for e in &block.chunks {
        let ids = assignment.get(e.chunk as usize).ok_or_else(|| {
            CanopusError::Invalid(format!(
                "shard {} indexes chunk {} beyond the {}-chunk assignment",
                block.key,
                e.chunk,
                assignment.len()
            ))
        })?;
        let end = pos + e.elements as usize;
        if ids.len() != e.elements as usize || end > values.len() {
            return Err(CanopusError::Invalid(format!(
                "shard {} chunk {} carries {} values for {} vertices",
                block.key,
                e.chunk,
                e.elements,
                ids.len()
            )));
        }
        for (&vid, &val) in ids.iter().zip(&values[pos..end]) {
            delta[vid as usize] = val;
        }
        pos = end;
    }
    if pos != values.len() {
        return Err(CanopusError::Invalid(format!(
            "shard {} decoded {} values, its chunk index covers {pos}",
            block.key,
            values.len()
        )));
    }
    Ok(())
}

/// One unit of pipeline work: fetch + decode one stored block.
struct RestoreJob {
    level_idx: usize,
    chunk_idx: usize,
    block: BlockMeta,
}

/// Per-level scatter state for the in-order restore stage.
struct LevelState {
    finer: u32,
    fine_mesh: TriMesh,
    mapping: Vec<u32>,
    delta: Vec<f64>,
    /// Chunk → vertex-id assignment; `None` for a monolithic delta.
    assignment: Option<Vec<Vec<u32>>>,
    /// Blocks of this level still in flight.
    remaining: usize,
}

/// Prefetch → decode message: `(job index, payload, simulated I/O secs,
/// enqueue instant — queue-wait time feeds
/// [`names::READ_QUEUE_WAIT_HIST`] at worker pickup)`.
type Fetched = Result<(usize, Bytes, f64, Instant), CanopusError>;
/// Decode → restore message: `(job index, values, io secs, decode secs)`.
type Decoded = Result<(usize, Vec<f64>, f64, f64), CanopusError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CanopusConfig, RelativeCodec};
    use crate::write::Canopus;
    use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
    use canopus_mesh::geometry::{Aabb, Point2};
    use canopus_storage::{FaultPlan, StorageHierarchy, TierSpec};
    use std::sync::Arc;

    fn setup(codec: RelativeCodec) -> (Canopus, TriMesh, Vec<f64>) {
        let h = Arc::new(StorageHierarchy::new(vec![
            TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
            TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
        ]));
        let c = Canopus::new(
            h,
            CanopusConfig {
                codec,
                ..Default::default()
            },
        );
        let mesh = jitter_interior(
            &rectangle_mesh(
                16,
                16,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            9,
        );
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 9.0).sin() + (p.y * 5.0).cos() * 0.5)
            .collect();
        (c, mesh, data)
    }

    #[test]
    fn full_restore_respects_codec_bound() {
        let rel = 1e-6;
        let (c, mesh, data) = setup(RelativeCodec::ZfpLike { rel_tolerance: rel });
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap();
        let out = reader.read_level("v", 0).unwrap();
        assert_eq!(out.level, 0);
        assert_eq!(out.data.len(), data.len());
        let range = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - data.iter().cloned().fold(f64::INFINITY, f64::min);
        // Errors accumulate across base + 2 deltas: 3x the bound is safe.
        let bound = 3.0 * rel * range;
        let max_err = out
            .data
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= bound, "err {max_err} > {bound}");
    }

    #[test]
    fn base_read_is_small_and_fast() {
        let (c, mesh, data) = setup(RelativeCodec::ZfpLike {
            rel_tolerance: 1e-6,
        });
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap();
        let base = reader.read_base("v").unwrap();
        assert_eq!(base.level, 2);
        assert!(base.data.len() < data.len() / 3);
        let full = reader.read_level("v", 0).unwrap();
        assert!(
            full.timing.io_secs > base.timing.io_secs,
            "full restore reads more bytes from slower tiers"
        );
    }

    #[test]
    fn refine_steps_walk_levels() {
        let (c, mesh, data) = setup(RelativeCodec::ZfpLike {
            rel_tolerance: 1e-6,
        });
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap();
        let base = reader.read_base("v").unwrap();
        let (mid, rms1) = reader.refine_once("v", &base).unwrap();
        assert_eq!(mid.level, 1);
        assert!(rms1 > 0.0);
        let (full, _) = reader.refine_once("v", &mid).unwrap();
        assert_eq!(full.level, 0);
        assert!(reader.refine_once("v", &full).is_err());
    }

    #[test]
    fn raw_codec_roundtrips_exactly_through_storage() {
        let (c, mesh, data) = setup(RelativeCodec::Raw);
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap();
        let out = reader.read_level("v", 0).unwrap();
        let max_err = out
            .data
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Raw products only accumulate restoration rounding.
        assert!(max_err < 1e-12, "err {max_err}");
    }

    #[test]
    fn sz_codec_end_to_end() {
        let (c, mesh, data) = setup(RelativeCodec::SzLike {
            rel_error_bound: 1e-5,
        });
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap();
        let out = reader.read_level("v", 0).unwrap();
        let range = 2.0; // field spans roughly [-1.5, 1.5]
        let max_err = out
            .data
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= 3.0 * 1e-5 * range * 2.0, "err {max_err}");
    }

    #[test]
    fn pipelined_decode_pool_recycles_buffers() {
        let (c, mesh, data) = setup(RelativeCodec::ZfpLike {
            rel_tolerance: 1e-6,
        });
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let serial = c.open("t.bp").unwrap();
        let expect = serial.read_level("v", 0).unwrap();
        let reader = c.open("t.bp").unwrap().with_pipeline_depth(4);
        let first = reader.read_level("v", 0).unwrap();
        let again = reader.read_level("v", 0).unwrap();
        for out in [&first, &again] {
            assert_eq!(
                out.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "arena-backed pipelined decode must match the serial engine"
            );
        }
        let snap = reader.obs.snapshot();
        assert!(
            snap.counter(names::READ_DECODE_BUF_HITS) > 0,
            "repeat pipelined reads should reuse retired decode buffers"
        );
        assert!(snap.counter(names::READ_DECODE_BUF_MISSES) > 0);
    }

    #[test]
    fn invalid_level_and_var_error() {
        let (c, mesh, data) = setup(RelativeCodec::Raw);
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap();
        assert!(reader.read_level("v", 9).is_err());
        assert!(reader.read_base("nope").is_err());
    }

    /// A file whose deltas are split into spatial chunks, so region
    /// refinement can fetch a strict subset.
    fn chunked_setup() -> (Canopus, TriMesh, Vec<f64>) {
        let h = Arc::new(StorageHierarchy::new(vec![
            TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
            TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
        ]));
        let c = Canopus::new(
            h,
            CanopusConfig {
                codec: RelativeCodec::Raw,
                delta_chunks: 8,
                ..Default::default()
            },
        );
        let mesh = jitter_interior(
            &rectangle_mesh(
                24,
                24,
                Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]),
            ),
            0.2,
            9,
        );
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 9.0).sin() + (p.y * 5.0).cos() * 0.5)
            .collect();
        c.write("t.bp", "v", &mesh, &data).unwrap();
        (c, mesh, data)
    }

    /// A corner window intersecting only some of the 8 chunks.
    fn corner_window(mesh: &TriMesh) -> Aabb {
        let bb = mesh.aabb();
        Aabb::from_points([
            bb.min,
            Point2::new(
                bb.min.x + (bb.max.x - bb.min.x) * 0.2,
                bb.min.y + (bb.max.y - bb.min.y) * 0.2,
            ),
        ])
    }

    #[test]
    fn mixed_accuracy_region_results_never_enter_the_cache() {
        let (c, mesh, _) = chunked_setup();
        // Ground truth from a cache-less serial reader.
        let reference = c
            .open("t.bp")
            .unwrap()
            .with_level_cache(0)
            .read_level_serial("v", 0)
            .unwrap();

        let reader = c.open("t.bp").unwrap(); // cache on by default
        let base = reader.read_base("v").unwrap();
        assert!(base.level_exact);
        let (roi, stats) = reader
            .refine_region("v", &base, corner_window(&mesh))
            .unwrap();
        assert!(
            stats.chunks_read < stats.chunks_total,
            "window must hit a strict chunk subset ({stats:?})"
        );
        assert!(
            !roi.level_exact,
            "partial region results are mixed accuracy"
        );

        // Refine the mixed field down to L0; the results stay mixed and
        // must not be stored as the canonical levels.
        let (mixed, _) = reader.refine_once("v", &roi).unwrap();
        assert_eq!(mixed.level, 0);
        assert!(!mixed.level_exact, "the mix is inherited");

        // A canonical read afterwards restores the exact field.
        let canonical = reader.read_level("v", 0).unwrap();
        assert!(canonical.level_exact);
        assert_eq!(
            canonical.data, reference.data,
            "cache must not have been contaminated by the region walk"
        );
    }

    #[test]
    fn refining_a_mixed_field_ignores_the_canonical_cache_entry() {
        let (c, mesh, _) = chunked_setup();
        let reader = c.open("t.bp").unwrap();
        // Populate the cache with the canonical levels first.
        let full = reader.read_level("v", 0).unwrap();

        let base = reader.read_base("v").unwrap();
        let (roi, stats) = reader
            .refine_region("v", &base, corner_window(&mesh))
            .unwrap();
        assert!(stats.chunks_read < stats.chunks_total);
        let (refined, _) = reader.refine_once("v", &roi).unwrap();
        assert!(
            !refined.level_exact,
            "a cached canonical hit must not replace the caller's mixed field"
        );
        assert_ne!(
            refined.data, full.data,
            "the refinement applies to the mixed input, not the cached level"
        );
    }

    #[test]
    fn cache_accounting_is_symmetric() {
        let (c, mesh, data) = setup(RelativeCodec::Raw);
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("t.bp").unwrap(); // cache on, pipelined engine
        let counts = || {
            (
                reader.metrics().counter(names::READ_CACHE_HITS).get(),
                reader.metrics().counter(names::READ_CACHE_MISSES).get(),
            )
        };

        reader.read_base("v").unwrap();
        assert_eq!(counts(), (0, 1), "cold base read: one probe, one miss");
        reader.read_base("v").unwrap();
        assert_eq!(counts(), (1, 1), "warm base read: one hit");
        reader.read_level("v", 2).unwrap();
        assert_eq!(counts(), (2, 1), "cached exact target: one hit, no miss");
        reader.read_level("v", 1).unwrap();
        assert_eq!(counts(), (3, 1), "coarser start found: one hit, no miss");
        reader.read_level("v", 0).unwrap();
        assert_eq!(counts(), (4, 1), "coarser start again: one hit");
        reader.read_level("v", 0).unwrap();
        assert_eq!(counts(), (5, 1), "warm exact target: one hit");
    }

    #[test]
    fn transient_faults_retry_to_byte_identical_results() {
        let (c, mesh, data) = setup(RelativeCodec::Raw);
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let clean = c
            .open("t.bp")
            .unwrap()
            .with_level_cache(0)
            .read_level("v", 0)
            .unwrap();
        assert!(!clean.degraded);

        // Open before arming: arming faults also exposes the manifest
        // read (which has no retry loop) to injection.
        let serial = c
            .open("t.bp")
            .unwrap()
            .with_level_cache(0)
            .with_pipeline_depth(0);
        let pipelined = c.open("t.bp").unwrap().with_level_cache(0);
        c.hierarchy().set_fault_plan_all(FaultPlan {
            seed: 7,
            get_error_p: 0.25,
            ..FaultPlan::none()
        });

        for reader in [&serial, &pipelined] {
            let out = reader.read_level("v", 0).unwrap();
            assert!(!out.degraded, "transients within budget never degrade");
            assert_eq!(out.level, 0);
            assert_eq!(out.achieved_level, 0);
            assert_eq!(
                out.data, clean.data,
                "restored bytes identical to the fault-free run"
            );
        }
        let m = c.metrics();
        assert!(
            m.counter(names::READ_RETRIES).get() > 0,
            "the walk must actually have retried"
        );
        assert!(m.counter(names::READ_FAULTS_INJECTED).get() > 0);
        assert_eq!(m.counter(names::READ_DEGRADED_RESTORES).get(), 0);
    }

    #[test]
    fn tier_down_past_retry_budget_degrades_instead_of_erroring() {
        let (c, mesh, data) = setup(RelativeCodec::Raw);
        c.write("t.bp", "v", &mesh, &data).unwrap();
        let base_level = 2;
        let clean: Vec<_> = (0..=base_level)
            .map(|l| {
                c.open("t.bp")
                    .unwrap()
                    .with_level_cache(0)
                    .read_level("v", l)
                    .unwrap()
            })
            .collect();
        let serial = c
            .open("t.bp")
            .unwrap()
            .with_level_cache(0)
            .with_pipeline_depth(0);
        let pipelined = c.open("t.bp").unwrap().with_level_cache(0);
        // The slow tier — holding the fine deltas — goes hard down for
        // good; retries cannot cure it.
        c.hierarchy()
            .set_fault_plan(
                1,
                FaultPlan {
                    seed: 1,
                    down: Some((0, u64::MAX)),
                    ..FaultPlan::none()
                },
            )
            .unwrap();

        for reader in [&serial, &pipelined] {
            let out = reader.read_level("v", 0).unwrap();
            assert!(out.degraded, "unreachable levels degrade, never error");
            assert!(out.level > 0, "the full-accuracy level was unreachable");
            assert_eq!(out.achieved_level, out.level);
            assert!(out.level_exact, "the achieved level itself is exact");
            assert_eq!(
                out.data, clean[out.level as usize].data,
                "degraded result is byte-identical to a clean read of the \
                 achieved level"
            );
        }
        assert!(c.metrics().counter(names::READ_DEGRADED_RESTORES).get() >= 2);
    }

    #[test]
    fn unrefactored_file_reads_back() {
        let (c, mesh, data) = setup(RelativeCodec::Raw);
        c.write_unrefactored("raw.bp", "v", &mesh, &data).unwrap();
        let reader = c.open("raw.bp").unwrap();
        assert_eq!(reader.num_levels(), 1);
        let out = reader.read_level("v", 0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.timing.restore_secs, 0.0);
    }
}
