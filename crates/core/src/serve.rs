//! Shared, long-lived serving layer: many analysts, one campaign.
//!
//! The paper's elasticity story is multi-tenant — several analysts pull
//! *different* accuracy levels of the same refactored campaign at once,
//! each trading accuracy for speed independently. [`CanopusService`]
//! turns the single-caller engines into that shared service: a bounded
//! admission queue, a worker pool executing requests over `&self`
//! readers (one shared [`CanopusReader`] per file, so all tenants of a
//! file share its decoded-level and geometry caches), and per-request
//! priority classes with deadline-aware scheduling.
//!
//! ## Priority semantics
//!
//! Two classes mirror the two ends of the accuracy/speed trade:
//!
//! * [`Priority::QuickLook`] — cheap exploratory reads (base level, a
//!   short deadline budget);
//! * [`Priority::FullAccuracy`] — deep restores and refinements (long
//!   deadline budget).
//!
//! Scheduling is earliest-deadline-first over `(deadline, seq)`, where
//! a request's deadline is its admission time plus the class budget
//! (overridable per request). Within a class that degenerates to FIFO;
//! across classes a fresh `QuickLook` overtakes queued `FullAccuracy`
//! work unless the full restore has waited long enough that its own
//! deadline comes first — so deep restores are starvation-free.
//! Additionally, when the pool has 2+ workers, **worker 0 serves only
//! `QuickLook` requests**: even with every other worker pinned inside a
//! running full restore, a quick look is picked up immediately. That
//! reserved lane is what makes "cheap reads are never stuck behind a
//! full restore" a structural guarantee instead of a probabilistic one.
//!
//! ## Backpressure, shutdown, drain
//!
//! The admission queue is bounded (`CanopusConfig::serve_queue`):
//! `submit` blocks until a slot frees, giving closed-loop clients
//! natural backpressure. Dropping the service marks it shut down, wakes
//! everyone, and **drains**: every request already admitted is still
//! executed and its [`Ticket`] resolves; only new submissions (and
//! submitters still blocked on a full queue) get
//! [`CanopusError::ServiceStopped`].
//!
//! ## Lock order
//!
//! The service adds two leaf locks above the reader's own (documented
//! on [`CanopusReader`]): the scheduler mutex and the per-file reader
//! map. Neither is ever held while executing a request, opening a file,
//! or touching reader/storage locks — a worker pops under the scheduler
//! lock, releases it, then runs the request lock-free from the
//! service's point of view.

use crate::error::CanopusError;
use crate::read::{CanopusReader, ReadOutcome, RegionStats};
use crate::tiering::TierMigrator;
use crate::write::Canopus;
use canopus_mesh::Aabb;
use canopus_obs::{names, Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-request priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Cheap exploratory read (base level): short deadline, never
    /// queued behind deep restores.
    QuickLook,
    /// Deep restore / refinement: long deadline, scheduled EDF so it
    /// cannot starve behind a stream of quick looks.
    FullAccuracy,
}

impl Priority {
    /// Metric-name segment for this class (`quick` / `full`).
    pub const fn class(self) -> &'static str {
        match self {
            Priority::QuickLook => "quick",
            Priority::FullAccuracy => "full",
        }
    }

    /// Default deadline budget from admission, the EDF ordering key
    /// unless overridden via [`ServeOptions::deadline`].
    pub const fn default_deadline(self) -> Duration {
        match self {
            Priority::QuickLook => Duration::from_millis(50),
            Priority::FullAccuracy => Duration::from_secs(30),
        }
    }
}

const fn class_idx(p: Priority) -> usize {
    match p {
        Priority::QuickLook => 0,
        Priority::FullAccuracy => 1,
    }
}

/// One retrieval request against a served campaign.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// Read the base (coarsest) level of `var` — the quick look.
    Base { file: String, var: String },
    /// Restore `var` to accuracy `level` (0 = full accuracy).
    Level {
        file: String,
        var: String,
        level: u32,
    },
    /// Quick look plus one focused refinement inside `region`
    /// (fetches only the intersecting delta chunks).
    Region {
        file: String,
        var: String,
        region: Aabb,
    },
}

impl ServeRequest {
    /// The class a request lands in unless the submitter overrides it:
    /// base reads are quick looks, everything else is accuracy work.
    pub fn default_priority(&self) -> Priority {
        match self {
            ServeRequest::Base { .. } => Priority::QuickLook,
            _ => Priority::FullAccuracy,
        }
    }
}

/// Per-request scheduling options.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    pub priority: Priority,
    /// Deadline budget from admission; `None` takes the class default.
    pub deadline: Option<Duration>,
}

impl ServeOptions {
    pub fn new(priority: Priority) -> Self {
        Self {
            priority,
            deadline: None,
        }
    }
}

/// What a completed request returns.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    pub outcome: ReadOutcome,
    /// Present for [`ServeRequest::Region`] requests.
    pub region_stats: Option<RegionStats>,
    pub priority: Priority,
    /// Wall seconds the request waited in the admission queue.
    pub queue_wait_s: f64,
    /// Wall seconds a worker spent executing it.
    pub service_s: f64,
}

/// Handle to one in-flight request. Resolves exactly once: with the
/// response, the request's error, or [`CanopusError::ServiceStopped`]
/// if the executing worker died.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse, CanopusError>>,
}

impl Ticket {
    /// Block until the request completes.
    pub fn wait(self) -> Result<ServeResponse, CanopusError> {
        self.rx.recv().unwrap_or(Err(CanopusError::ServiceStopped))
    }

    /// Non-blocking poll: `None` while the request is still queued or
    /// executing.
    pub fn try_wait(&self) -> Option<Result<ServeResponse, CanopusError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(CanopusError::ServiceStopped)),
        }
    }

    /// Block up to `timeout`; `None` if the request hasn't completed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, CanopusError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(CanopusError::ServiceStopped)),
        }
    }
}

struct Job {
    seq: u64,
    request: ServeRequest,
    priority: Priority,
    deadline: Instant,
    enqueued: Instant,
    tx: mpsc::SyncSender<Result<ServeResponse, CanopusError>>,
}

/// Scheduler state behind the service's one mutex. Two queues, popped
/// earliest-deadline-first by `(deadline, seq)`.
struct Sched {
    quick: Vec<Job>,
    full: Vec<Job>,
    next_seq: u64,
    shutdown: bool,
}

impl Sched {
    fn len(&self) -> usize {
        self.quick.len() + self.full.len()
    }

    fn push(&mut self, job: Job) {
        match job.priority {
            Priority::QuickLook => self.quick.push(job),
            Priority::FullAccuracy => self.full.push(job),
        }
    }

    fn min_key(queue: &[Job]) -> Option<(usize, (Instant, u64))> {
        queue
            .iter()
            .enumerate()
            .map(|(i, j)| (i, (j.deadline, j.seq)))
            .min_by_key(|&(_, key)| key)
    }

    /// Pop the earliest-deadline job this worker may run. The reserved
    /// quick lane passes `quick_only`; everyone else runs EDF over the
    /// union of both queues. Queues stay poppable after shutdown — that
    /// is the drain.
    fn pop(&mut self, quick_only: bool) -> Option<Job> {
        let quick = Self::min_key(&self.quick);
        if quick_only {
            return quick.map(|(i, _)| self.quick.swap_remove(i));
        }
        let full = Self::min_key(&self.full);
        match (quick, full) {
            (Some((qi, qk)), Some((_, fk))) if qk <= fk => Some(self.quick.swap_remove(qi)),
            (Some((qi, _)), None) => Some(self.quick.swap_remove(qi)),
            (_, Some((fi, _))) => Some(self.full.swap_remove(fi)),
            (None, None) => None,
        }
    }
}

/// Pre-resolved instruments: workers bump atomics, never the registry's
/// name maps, on the hot path.
struct ClassMetrics {
    requests: Arc<Counter>,
    dequeued: Arc<Counter>,
    completed: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    latency: Arc<Histogram>,
    deadline_hit: Arc<Counter>,
    deadline_miss: Arc<Counter>,
    attainment: Arc<Gauge>,
}

struct ServeMetrics {
    requests: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    rejected: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_depth_peak: Arc<Gauge>,
    inflight: Arc<Gauge>,
    inflight_peak: Arc<Gauge>,
    workers_alive: Arc<Gauge>,
    class: [ClassMetrics; 2],
    /// The live-telemetry-plane switch. Off (the default), a worker's
    /// per-request extra cost is exactly this one relaxed load — the
    /// derived attainment gauges are not recomputed. Deadline hit/miss
    /// *counters* are ordinary metrics and always flow, like the rest.
    live: AtomicBool,
}

impl ServeMetrics {
    fn new(obs: &Registry) -> Self {
        let class = |p: Priority| ClassMetrics {
            requests: obs.counter(&names::serve_requests(p.class())),
            dequeued: obs.counter(&names::serve_dequeued(p.class())),
            completed: obs.counter(&names::serve_completed(p.class())),
            queue_wait: obs.histogram(&names::serve_queue_wait_hist(p.class())),
            latency: obs.histogram(&names::serve_latency_hist(p.class())),
            deadline_hit: obs.counter(&names::serve_deadline_hit(p.class())),
            deadline_miss: obs.counter(&names::serve_deadline_miss(p.class())),
            attainment: obs.gauge(&names::serve_attainment_ppm(p.class())),
        };
        Self {
            requests: obs.counter(names::SERVE_REQUESTS),
            completed: obs.counter(names::SERVE_COMPLETED),
            failed: obs.counter(names::SERVE_FAILED),
            rejected: obs.counter(names::SERVE_REJECTED),
            queue_depth: obs.gauge(names::SERVE_QUEUE_DEPTH),
            queue_depth_peak: obs.gauge(names::SERVE_QUEUE_DEPTH_PEAK),
            inflight: obs.gauge(names::SERVE_INFLIGHT),
            inflight_peak: obs.gauge(names::SERVE_INFLIGHT_PEAK),
            workers_alive: obs.gauge(names::SERVE_WORKERS_ALIVE),
            class: [class(Priority::QuickLook), class(Priority::FullAccuracy)],
            live: AtomicBool::new(false),
        }
    }
}

/// Attainment in parts per million: `hits * 1e6 / (hits + misses)`.
pub(crate) fn attainment_ppm(hits: u64, misses: u64) -> i64 {
    let total = hits + misses;
    if total == 0 {
        1_000_000
    } else {
        ((hits as u128 * 1_000_000) / total as u128) as i64
    }
}

struct Shared {
    canopus: Arc<Canopus>,
    /// One shared reader per file; all tenants of a file share its
    /// decoded-level and geometry caches. Leaf lock, never held across
    /// the open itself.
    readers: Mutex<HashMap<String, Arc<CanopusReader>>>,
    sched: Mutex<Sched>,
    /// Signalled when work arrives (or at shutdown).
    work: Condvar,
    /// Signalled when a queue slot frees (or at shutdown).
    space: Condvar,
    queue_cap: usize,
    m: ServeMetrics,
}

impl Shared {
    fn reader(&self, file: &str) -> Result<Arc<CanopusReader>, CanopusError> {
        if let Some(r) = self.readers.lock().unwrap().get(file) {
            return Ok(Arc::clone(r));
        }
        // Open outside the map lock: a first-open's tier I/O must not
        // block workers serving other files. A racing double-open keeps
        // the first inserted reader.
        let opened = Arc::new(self.canopus.open(file)?);
        let mut map = self.readers.lock().unwrap();
        Ok(Arc::clone(map.entry(file.to_string()).or_insert(opened)))
    }
}

fn execute(
    shared: &Shared,
    request: &ServeRequest,
) -> Result<(ReadOutcome, Option<RegionStats>), CanopusError> {
    match request {
        ServeRequest::Base { file, var } => shared.reader(file)?.read_base(var).map(|o| (o, None)),
        ServeRequest::Level { file, var, level } => shared
            .reader(file)?
            .read_level(var, *level)
            .map(|o| (o, None)),
        ServeRequest::Region { file, var, region } => {
            let reader = shared.reader(file)?;
            let base = reader.read_base(var)?;
            let (roi, stats) = reader.refine_region(var, &base, *region)?;
            Ok((roi, Some(stats)))
        }
    }
}

fn worker_loop(shared: &Shared, quick_only: bool) {
    loop {
        let job = {
            let mut sched = shared.sched.lock().unwrap();
            loop {
                if let Some(job) = sched.pop(quick_only) {
                    break job;
                }
                if sched.shutdown {
                    shared.m.workers_alive.sub(1);
                    return;
                }
                sched = shared.work.wait(sched).unwrap();
            }
        };
        shared.space.notify_one();

        let class = &shared.m.class[class_idx(job.priority)];
        shared.m.queue_depth.sub(1);
        class.dequeued.inc();
        let queue_wait_s = job.enqueued.elapsed().as_secs_f64();
        class.queue_wait.observe_secs(queue_wait_s);

        shared.m.inflight.add(1);
        shared.m.inflight_peak.set_max(shared.m.inflight.get());
        let started = Instant::now();
        let result = execute(shared, &job.request);
        let finished = Instant::now();
        let service_s = finished.duration_since(started).as_secs_f64();
        shared.m.inflight.sub(1);

        let result = match result {
            Ok((outcome, region_stats)) => {
                shared.m.completed.inc();
                class.completed.inc();
                class.latency.observe_secs(queue_wait_s + service_s);
                // SLO accounting: a hit finishes *strictly before* the
                // deadline. The strictness makes the degenerate case
                // deterministic: a zero deadline budget pins the
                // deadline at admission time, and a monotone clock
                // guarantees completion is never before admission — so
                // such a request counts exactly one miss, always.
                if finished < job.deadline {
                    class.deadline_hit.inc();
                } else {
                    class.deadline_miss.inc();
                }
                // The derived attainment gauge belongs to the live
                // telemetry plane; disabled, its cost is this single
                // relaxed load.
                if shared.m.live.load(Ordering::Relaxed) {
                    class.attainment.set(attainment_ppm(
                        class.deadline_hit.get(),
                        class.deadline_miss.get(),
                    ));
                }
                Ok(ServeResponse {
                    outcome,
                    region_stats,
                    priority: job.priority,
                    queue_wait_s,
                    service_s,
                })
            }
            Err(e) => {
                shared.m.failed.inc();
                Err(e)
            }
        };
        // A dropped ticket just means the client stopped caring.
        let _ = job.tx.send(result);
    }
}

/// The background adaptive-tiering thread: one [`TierMigrator`] ticked
/// every `TieringPolicy::interval_ms` until the service drops. The stop
/// flag lives under its own mutex + condvar so shutdown interrupts a
/// sleeping maintainer immediately instead of waiting out the interval.
struct Maintainer {
    handle: JoinHandle<()>,
    stop: Arc<(Mutex<bool>, Condvar)>,
}

impl Maintainer {
    fn spawn(
        migrator: Arc<TierMigrator>,
        interval: Duration,
        last_maintain_ms: Arc<Gauge>,
        epoch: Instant,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("canopus-tier-maintain".into())
            .spawn(move || {
                let (lock, cv) = &*flag;
                let mut stopped = lock.lock().unwrap();
                loop {
                    let (guard, _) = cv.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    // Tick without holding the stop lock: a maintain
                    // pass does tier I/O and must not delay shutdown's
                    // flag flip (it only delays the join).
                    drop(stopped);
                    migrator.maintain();
                    // Freshness beacon for `/healthz`: when this stops
                    // advancing, the maintainer is wedged or dead.
                    last_maintain_ms.set(epoch.elapsed().as_millis() as i64);
                    stopped = lock.lock().unwrap();
                }
            })
            .expect("spawn tier maintainer");
        Self { handle, stop }
    }
}

/// The shared serving layer: a bounded admission queue and a worker
/// pool over one [`Canopus`] engine. See the module docs for the
/// scheduling and shutdown semantics.
pub struct CanopusService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    maintainer: Option<Maintainer>,
    /// The maintainer's migrator, kept so the telemetry plane can read
    /// the decision audit ring while the service runs.
    migrator: Option<Arc<TierMigrator>>,
    /// Service start time — the origin of `/healthz` uptime and the
    /// last-maintain beacon.
    epoch: Instant,
}

impl CanopusService {
    /// Start the worker pool sized by the engine's configuration
    /// (`serve_workers`: 0 = available parallelism, never below 2;
    /// `serve_queue`: admission bound, at least 1).
    pub fn start(canopus: Arc<Canopus>) -> Self {
        let config = *canopus.config();
        let workers = if config.serve_workers > 0 {
            config.serve_workers as usize
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        };
        let queue_cap = config.serve_queue.max(1) as usize;
        let epoch = Instant::now();
        let m = ServeMetrics::new(canopus.metrics());
        m.workers_alive.set(workers as i64);
        let shared = Arc::new(Shared {
            canopus,
            readers: Mutex::new(HashMap::new()),
            sched: Mutex::new(Sched {
                quick: Vec::new(),
                full: Vec::new(),
                next_seq: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            queue_cap,
            m,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // Worker 0 is the reserved QuickLook lane once the pool
                // has a second worker to take FullAccuracy jobs.
                let quick_only = workers >= 2 && i == 0;
                std::thread::Builder::new()
                    .name(format!("canopus-serve-{i}"))
                    .spawn(move || worker_loop(&shared, quick_only))
                    .expect("spawn serve worker")
            })
            .collect();
        let mut migrator = None;
        let maintainer = config.adaptive_tiering.then(|| {
            let m = Arc::new(TierMigrator::new(
                shared.canopus.hierarchy_arc(),
                config.tiering,
            ));
            migrator = Some(Arc::clone(&m));
            let interval = Duration::from_millis(config.tiering.interval_ms.max(1));
            let beacon = shared
                .canopus
                .metrics()
                .gauge(names::SERVE_LAST_MAINTAIN_MILLIS);
            Maintainer::spawn(m, interval, beacon, epoch)
        });
        Self {
            shared,
            workers: handles,
            maintainer,
            migrator,
            epoch,
        }
    }

    /// Turn on the live telemetry plane's in-service work (today: the
    /// per-class deadline-attainment gauges, recomputed at completion).
    /// Off — the default — a worker pays one relaxed atomic load per
    /// request for the check and nothing else.
    pub fn enable_live_telemetry(&self) {
        self.shared.m.live.store(true, Ordering::Relaxed);
    }

    pub fn live_telemetry_enabled(&self) -> bool {
        self.shared.m.live.load(Ordering::Relaxed)
    }

    /// The background migrator (present iff
    /// `CanopusConfig::adaptive_tiering`), for the decision audit ring.
    pub fn tier_migrator(&self) -> Option<&Arc<TierMigrator>> {
        self.migrator.as_ref()
    }

    /// Wall time since the service started.
    pub fn uptime(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Everything the telemetry endpoint needs to observe this service:
    /// the shared registry, the deterministic sim clock, the migrator's
    /// audit ring, and the pool shape for `/healthz`.
    pub fn telemetry_sources(&self) -> crate::telemetry::TelemetrySources {
        let hierarchy = self.shared.canopus.hierarchy_arc();
        let mut sources =
            crate::telemetry::TelemetrySources::new(Arc::clone(self.shared.canopus.metrics()))
                .with_sim_clock(move || hierarchy.clock().now().seconds())
                .with_epoch(self.epoch)
                .with_service_shape(
                    self.workers.len(),
                    self.shared.queue_cap,
                    self.maintainer.is_some(),
                );
        if let Some(m) = &self.migrator {
            sources = sources.with_migrator(Arc::clone(m));
        }
        sources
    }

    /// Whether a background tier maintainer is running
    /// (`CanopusConfig::adaptive_tiering`).
    pub fn maintains_tiers(&self) -> bool {
        self.maintainer.is_some()
    }

    /// Number of worker threads (including the reserved quick lane).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Admission-queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_cap
    }

    /// The engine's metrics registry (shared with storage and readers).
    pub fn metrics(&self) -> &Arc<Registry> {
        self.shared.canopus.metrics()
    }

    /// Submit with the request's default class and deadline.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, CanopusError> {
        let priority = request.default_priority();
        self.submit_with(request, ServeOptions::new(priority))
    }

    /// Submit with an explicit class/deadline. Blocks while the bounded
    /// queue is full; fails with [`CanopusError::ServiceStopped`] once
    /// shutdown has begun.
    pub fn submit_with(
        &self,
        request: ServeRequest,
        opts: ServeOptions,
    ) -> Result<Ticket, CanopusError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let now = Instant::now();
        let deadline = now
            + opts
                .deadline
                .unwrap_or_else(|| opts.priority.default_deadline());
        let shared = &self.shared;
        let mut sched = shared.sched.lock().unwrap();
        while !sched.shutdown && sched.len() >= shared.queue_cap {
            sched = shared.space.wait(sched).unwrap();
        }
        if sched.shutdown {
            shared.m.rejected.inc();
            return Err(CanopusError::ServiceStopped);
        }
        let seq = sched.next_seq;
        sched.next_seq += 1;
        sched.push(Job {
            seq,
            request,
            priority: opts.priority,
            deadline,
            enqueued: now,
            tx,
        });
        let depth = sched.len() as i64;
        drop(sched);
        shared.m.requests.inc();
        shared.m.class[class_idx(opts.priority)].requests.inc();
        shared.m.queue_depth.add(1);
        shared.m.queue_depth_peak.set_max(depth);
        // notify_all, not notify_one: a single wake could land on the
        // reserved quick worker while the new job is FullAccuracy.
        shared.work.notify_all();
        Ok(Ticket { rx })
    }
}

impl Drop for CanopusService {
    /// Shutdown drains: admitted requests still execute and their
    /// tickets resolve; blocked/new submitters get `ServiceStopped`.
    fn drop(&mut self) {
        {
            let mut sched = self.shared.sched.lock().unwrap();
            sched.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(maintainer) = self.maintainer.take() {
            {
                let (lock, cv) = &*maintainer.stop;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
            let _ = maintainer.handle.join();
        }
    }
}

// The whole point of the refactor: readers, engine and service are
// shareable across threads.
fn _assert_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<CanopusReader>();
    assert::<Canopus>();
    assert::<CanopusService>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CanopusConfig, RelativeCodec};
    use canopus_data::xgc1_dataset_sized;
    use canopus_refactor::levels::RefactorConfig;
    use canopus_storage::StorageHierarchy;

    fn engine(workers: u32, queue: u32) -> Arc<Canopus> {
        let ds = xgc1_dataset_sized(8, 40, 3);
        let raw = (ds.data.len() * 8) as u64;
        let canopus = Canopus::new(
            Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
            CanopusConfig {
                refactor: RefactorConfig {
                    num_levels: 3,
                    ..Default::default()
                },
                codec: RelativeCodec::Raw,
                serve_workers: workers,
                serve_queue: queue,
                ..Default::default()
            },
        );
        canopus.write("s.bp", ds.var, &ds.mesh, &ds.data).unwrap();
        Arc::new(canopus)
    }

    #[test]
    fn default_priorities_split_by_request_kind() {
        let base = ServeRequest::Base {
            file: "f".into(),
            var: "v".into(),
        };
        let level = ServeRequest::Level {
            file: "f".into(),
            var: "v".into(),
            level: 0,
        };
        assert_eq!(base.default_priority(), Priority::QuickLook);
        assert_eq!(level.default_priority(), Priority::FullAccuracy);
        assert!(Priority::QuickLook.default_deadline() < Priority::FullAccuracy.default_deadline());
    }

    #[test]
    fn serves_requests_and_matches_direct_reads() {
        let canopus = engine(2, 4);
        let service = CanopusService::start(Arc::clone(&canopus));
        assert_eq!(service.workers(), 2);
        assert_eq!(service.queue_capacity(), 4);

        let direct = canopus.open("s.bp").unwrap();
        let want_base = direct.read_base("dpot").unwrap();
        let want_l0 = direct.read_level("dpot", 0).unwrap();

        let base = service
            .submit(ServeRequest::Base {
                file: "s.bp".into(),
                var: "dpot".into(),
            })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(base.priority, Priority::QuickLook);
        assert_eq!(base.outcome.data, want_base.data);

        let full = service
            .submit(ServeRequest::Level {
                file: "s.bp".into(),
                var: "dpot".into(),
                level: 0,
            })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(full.priority, Priority::FullAccuracy);
        assert_eq!(full.outcome.data, want_l0.data);
        assert!(full.queue_wait_s >= 0.0 && full.service_s >= 0.0);

        let snap = service.metrics().snapshot();
        assert_eq!(snap.counter(names::SERVE_REQUESTS), 2);
        assert_eq!(snap.counter(names::SERVE_COMPLETED), 2);
        assert_eq!(snap.counter(names::SERVE_FAILED), 0);
    }

    #[test]
    fn unknown_variable_fails_the_request_not_the_service() {
        let canopus = engine(1, 4);
        let service = CanopusService::start(Arc::clone(&canopus));
        let err = service
            .submit(ServeRequest::Base {
                file: "s.bp".into(),
                var: "nope".into(),
            })
            .unwrap()
            .wait();
        assert!(err.is_err());
        // The pool survives a failed request.
        let ok = service
            .submit(ServeRequest::Base {
                file: "s.bp".into(),
                var: "dpot".into(),
            })
            .unwrap()
            .wait();
        assert!(ok.is_ok());
        let snap = service.metrics().snapshot();
        assert_eq!(snap.counter(names::SERVE_FAILED), 1);
    }

    #[test]
    fn adaptive_service_runs_the_maintainer_and_still_serves() {
        let ds = xgc1_dataset_sized(8, 40, 3);
        let raw = (ds.data.len() * 8) as u64;
        let canopus = Canopus::new(
            Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
            CanopusConfig {
                refactor: RefactorConfig {
                    num_levels: 3,
                    ..Default::default()
                },
                codec: RelativeCodec::Raw,
                serve_workers: 2,
                adaptive_tiering: true,
                tiering: crate::tiering::TieringPolicy {
                    interval_ms: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        canopus.write("s.bp", ds.var, &ds.mesh, &ds.data).unwrap();
        let canopus = Arc::new(canopus);
        let metrics = Arc::clone(canopus.metrics());
        {
            let service = CanopusService::start(Arc::clone(&canopus));
            assert!(service.maintains_tiers());
            let resp = service
                .submit(ServeRequest::Base {
                    file: "s.bp".into(),
                    var: "dpot".into(),
                })
                .unwrap()
                .wait()
                .unwrap();
            assert!(!resp.outcome.data.is_empty());
            // Give the 1 ms maintainer time to tick at least once.
            std::thread::sleep(Duration::from_millis(50));
        } // drop stops the maintainer promptly (no interval-long hang)
        let snap = metrics.snapshot();
        assert!(
            snap.counter(names::TIER_MAINTAIN_TICKS) >= 1,
            "background maintainer ticked"
        );
        let disabled = CanopusService::start(engine(2, 4));
        assert!(!disabled.maintains_tiers(), "default config: no maintainer");
    }

    #[test]
    fn zero_budget_request_counts_exactly_one_deterministic_miss() {
        let canopus = engine(2, 4);
        let service = CanopusService::start(Arc::clone(&canopus));
        service.enable_live_telemetry();
        let base = || ServeRequest::Base {
            file: "s.bp".into(),
            var: "dpot".into(),
        };
        // Admitted already past its deadline: completion cannot precede
        // admission on a monotone clock, so this is always one miss.
        let opts = ServeOptions {
            priority: Priority::QuickLook,
            deadline: Some(Duration::ZERO),
        };
        service.submit_with(base(), opts).unwrap().wait().unwrap();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.counter(&names::serve_deadline_miss("quick")), 1);
        assert_eq!(snap.counter(&names::serve_deadline_hit("quick")), 0);
        assert_eq!(snap.gauge(&names::serve_attainment_ppm("quick")), 0);

        // A generous budget hits, and the attainment gauge follows.
        let opts = ServeOptions {
            priority: Priority::QuickLook,
            deadline: Some(Duration::from_secs(3600)),
        };
        service.submit_with(base(), opts).unwrap().wait().unwrap();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.counter(&names::serve_deadline_miss("quick")), 1);
        assert_eq!(snap.counter(&names::serve_deadline_hit("quick")), 1);
        assert_eq!(
            snap.gauge(&names::serve_attainment_ppm("quick")),
            500_000,
            "1 hit / 2 completions"
        );
        // Hit + miss partitions completions, per class.
        assert_eq!(snap.counter(&names::serve_completed("quick")), 2);
        assert_eq!(snap.counter(&names::serve_deadline_miss("full")), 0);
    }

    #[test]
    fn disabled_live_plane_still_counts_deadlines_but_no_gauges() {
        // The zero-overhead pattern: with the live plane off (default),
        // the base SLO counters flow like any other metric, while the
        // derived attainment gauge — the live plane's per-request work —
        // is never computed.
        let canopus = engine(2, 4);
        let service = CanopusService::start(Arc::clone(&canopus));
        assert!(!service.live_telemetry_enabled(), "off by default");
        let opts = ServeOptions {
            priority: Priority::QuickLook,
            deadline: Some(Duration::ZERO),
        };
        service
            .submit_with(
                ServeRequest::Base {
                    file: "s.bp".into(),
                    var: "dpot".into(),
                },
                opts,
            )
            .unwrap()
            .wait()
            .unwrap();
        let snap = service.metrics().snapshot();
        assert_eq!(
            snap.counter(&names::serve_deadline_miss("quick")),
            1,
            "metrics flow regardless"
        );
        assert_eq!(
            snap.gauge(&names::serve_attainment_ppm("quick")),
            0,
            "the derived gauge is untouched while disabled"
        );
        assert_eq!(attainment_ppm(0, 0), 1_000_000, "vacuous attainment");
        assert_eq!(attainment_ppm(3, 1), 750_000);
    }

    #[test]
    fn workers_alive_gauge_tracks_pool_lifecycle() {
        let canopus = engine(3, 4);
        let metrics = Arc::clone(canopus.metrics());
        {
            let service = CanopusService::start(Arc::clone(&canopus));
            assert_eq!(
                metrics.snapshot().gauge(names::SERVE_WORKERS_ALIVE),
                3,
                "all workers alive while running"
            );
            assert!(service.uptime() >= Duration::ZERO);
        }
        assert_eq!(
            metrics.snapshot().gauge(names::SERVE_WORKERS_ALIVE),
            0,
            "drained shutdown retires every worker"
        );
    }

    #[test]
    fn edf_pop_orders_by_deadline_then_seq_and_respects_reserved_lane() {
        let now = Instant::now();
        let (tx, _rx) = mpsc::sync_channel(1);
        let job = |seq: u64, priority: Priority, deadline_ms: u64| Job {
            seq,
            request: ServeRequest::Base {
                file: "f".into(),
                var: "v".into(),
            },
            priority,
            deadline: now + Duration::from_millis(deadline_ms),
            enqueued: now,
            tx: tx.clone(),
        };
        let mut sched = Sched {
            quick: Vec::new(),
            full: Vec::new(),
            next_seq: 0,
            shutdown: false,
        };
        sched.push(job(0, Priority::FullAccuracy, 10));
        sched.push(job(1, Priority::QuickLook, 50));
        sched.push(job(2, Priority::QuickLook, 50));
        // Reserved lane never touches the full queue.
        assert_eq!(
            sched.pop(true).unwrap().seq,
            1,
            "FIFO within equal deadlines"
        );
        // General worker runs EDF across classes: the old full job's
        // deadline beats the remaining quick one.
        assert_eq!(sched.pop(false).unwrap().seq, 0);
        assert_eq!(sched.pop(false).unwrap().seq, 2);
        assert!(sched.pop(false).is_none());
        assert!(sched.pop(true).is_none());
    }
}
