//! Property-based tests for the core pipeline's newer surfaces: delta
//! chunking, region refinement, and metadata query pushdown.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use proptest::prelude::*;
use std::sync::Arc;

fn build_layout(
    nx: usize,
    ny: usize,
    seed: u64,
    chunks: u32,
    amp: f64,
    codec: RelativeCodec,
    sharded: bool,
) -> (Canopus, canopus_mesh::TriMesh, Vec<f64>) {
    let bb = Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
    let mesh = jitter_interior(&rectangle_mesh(nx, ny, bb), 0.2, seed);
    let data: Vec<f64> = mesh
        .points()
        .iter()
        .map(|p| amp * ((p.x * 8.0).sin() + (p.y * 6.0).cos()))
        .collect();
    let raw = (data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 3,
                ..Default::default()
            },
            codec,
            delta_chunks: chunks,
            spatial_chunking: sharded,
            ..Default::default()
        },
    );
    canopus.write("p.bp", "v", &mesh, &data).unwrap();
    (canopus, mesh, data)
}

fn build(
    nx: usize,
    ny: usize,
    seed: u64,
    chunks: u32,
    amp: f64,
) -> (Canopus, canopus_mesh::TriMesh, Vec<f64>) {
    build_layout(nx, ny, seed, chunks, amp, RelativeCodec::Raw, false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any chunk count restores identically to the unchunked layout.
    #[test]
    fn chunking_is_transparent_to_full_reads(
        nx in 5usize..12,
        ny in 5usize..12,
        seed in 0u64..200,
        chunks in 1u32..20,
    ) {
        let (chunked, _, _) = build(nx, ny, seed, chunks, 3.0);
        let (plain, _, data) = build(nx, ny, seed, 1, 3.0);
        let a = chunked.open("p.bp").unwrap().read_level("v", 0).unwrap();
        let b = plain.open("p.bp").unwrap().read_level("v", 0).unwrap();
        prop_assert_eq!(&a.data, &b.data);
        let max_err = a
            .data
            .iter()
            .zip(&data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(max_err < 1e-12);
    }

    /// A full-domain region refinement equals refine_once exactly.
    #[test]
    fn full_region_equals_full_refinement(
        nx in 5usize..12,
        ny in 5usize..12,
        seed in 0u64..200,
        chunks in 2u32..16,
    ) {
        let (canopus, mesh, _) = build(nx, ny, seed, chunks, 2.0);
        let reader = canopus.open("p.bp").unwrap();
        let base = reader.read_base("v").unwrap();
        let (full, _) = reader.refine_once("v", &base).unwrap();
        let (roi, stats) = reader
            .refine_region("v", &base, mesh.aabb())
            .unwrap();
        prop_assert_eq!(stats.chunks_read, stats.chunks_total);
        prop_assert_eq!(roi.data, full.data);
    }

    /// Region refinement is exact for every vertex inside the window.
    #[test]
    fn region_vertices_are_exact(
        seed in 0u64..200,
        cx in 0.2f64..0.8,
        cy in 0.2f64..0.8,
        half in 0.05f64..0.3,
    ) {
        let (canopus, _, _) = build(10, 10, seed, 8, 5.0);
        let reader = canopus.open("p.bp").unwrap();
        let base = reader.read_base("v").unwrap();
        let window = Aabb::from_points([
            Point2::new(cx - half, cy - half),
            Point2::new(cx + half, cy + half),
        ]);
        let (full, _) = reader.refine_once("v", &base).unwrap();
        let (roi, _) = reader.refine_region("v", &base, window).unwrap();
        for (v, p) in roi.mesh.points().iter().enumerate() {
            if window.contains(*p) {
                prop_assert_eq!(roi.data[v], full.data[v], "vertex {} at {:?}", v, p);
            }
        }
    }

    /// The pipelined restore engine returns exactly what the serial walk
    /// returns, for any mesh, chunking and prefetch depth.
    #[test]
    fn pipelined_engine_matches_serial_walk(
        nx in 5usize..12,
        ny in 5usize..12,
        seed in 0u64..200,
        chunks in 1u32..16,
        depth in 1u32..8,
        level in 0u32..3,
    ) {
        let (canopus, _, _) = build(nx, ny, seed, chunks, 4.0);
        let serial = canopus
            .open("p.bp")
            .unwrap()
            .with_pipeline_depth(0)
            .with_level_cache(0);
        let piped = canopus
            .open("p.bp")
            .unwrap()
            .with_pipeline_depth(depth)
            .with_level_cache(0);
        let a = serial.read_level("v", level).unwrap();
        let b = piped.read_level("v", level).unwrap();
        prop_assert_eq!(a.data, b.data);
        prop_assert_eq!(a.level, b.level);
        prop_assert_eq!(a.mesh.num_vertices(), b.mesh.num_vertices());
    }

    /// The Morton-sharded layout is value-identical to the legacy
    /// per-chunk layout for every geometry, chunk count, codec, level,
    /// and region window: full restores at each level agree, and a
    /// region refinement returns the same data with the same chunk
    /// accounting.
    #[test]
    fn sharded_layout_matches_chunked(
        nx in 5usize..12,
        ny in 5usize..12,
        seed in 0u64..200,
        chunks in 2u32..16,
        codec_sel in 0u8..4,
        level in 0u32..3,
        cx in 0.2f64..0.8,
        cy in 0.2f64..0.8,
        half in 0.05f64..0.4,
    ) {
        let codec = match codec_sel {
            0 => RelativeCodec::Raw,
            1 => RelativeCodec::Fpc,
            2 => RelativeCodec::ZfpLike { rel_tolerance: 1e-6 },
            _ => RelativeCodec::SzLike { rel_error_bound: 1e-4 },
        };
        let (sharded, mesh, _) = build_layout(nx, ny, seed, chunks, 3.0, codec, true);
        let (chunked, _, _) = build_layout(nx, ny, seed, chunks, 3.0, codec, false);

        let a = sharded.open("p.bp").unwrap().read_level("v", level).unwrap();
        let b = chunked.open("p.bp").unwrap().read_level("v", level).unwrap();
        prop_assert_eq!(&a.data, &b.data, "full restore at level {}", level);

        let window = Aabb::from_points([
            Point2::new(cx - half, cy - half),
            Point2::new(cx + half, cy + half),
        ]);
        let ra = sharded.open("p.bp").unwrap();
        let rb = chunked.open("p.bp").unwrap();
        let base_a = ra.read_base("v").unwrap();
        let base_b = rb.read_base("v").unwrap();
        let (roi_a, stats_a) = ra.refine_region("v", &base_a, window).unwrap();
        let (roi_b, stats_b) = rb.refine_region("v", &base_b, window).unwrap();
        prop_assert_eq!(roi_a.data, roi_b.data);
        prop_assert_eq!(stats_a.chunks_total, stats_b.chunks_total);
        prop_assert_eq!(stats_a.chunks_read, stats_b.chunks_read);
        prop_assert_eq!(stats_a.exact_vertices, stats_b.exact_vertices);
        // A window clear of the domain still planned every chunk.
        prop_assert_eq!(stats_a.chunks_total, chunks as usize);
        let _ = mesh;
    }

    /// Metadata bounds always contain the restored data at every level —
    /// the query pushdown can never produce a false negative.
    #[test]
    fn value_bounds_never_exclude_actual_values(
        nx in 5usize..12,
        ny in 5usize..12,
        seed in 0u64..200,
        amp in 0.1f64..100.0,
    ) {
        let (canopus, _, _) = build(nx, ny, seed, 1, amp);
        let reader = canopus.open("p.bp").unwrap();
        for level in 0..3u32 {
            let (lo, hi) = reader.value_bounds("v", level).unwrap();
            let out = reader.read_level("v", level).unwrap();
            for &x in &out.data {
                prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9,
                    "level {}: value {} outside [{}, {}]", level, x, lo, hi);
            }
            // query_range must agree with the bounds.
            prop_assert!(reader.query_range("v", level, lo, hi).unwrap());
            prop_assert!(!reader.query_range("v", level, hi + 1.0, hi + 2.0).unwrap());
        }
    }
}
