//! Umbrella crate for the Canopus reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests under
//! `/tests` and the runnable examples under `/examples`. The actual library
//! surface lives in the `canopus` crate (re-exported here for convenience)
//! and its substrate crates.

pub use canopus;
pub use canopus_adios as adios;
pub use canopus_analytics as analytics;
pub use canopus_compress as compress;
pub use canopus_data as data;
pub use canopus_mesh as mesh;
pub use canopus_refactor as refactor;
pub use canopus_storage as storage;
