//! Offline drop-in subset of `crossbeam`.
//!
//! Only the `channel::bounded` surface is provided, with the semantics
//! the staging transport and the restore pipeline depend on: bounded
//! capacity, blocking `send` when full, receiver iteration that ends
//! when every sender is dropped, and — matching real crossbeam —
//! multi-consumer receivers (`Receiver` is `Clone + Send + Sync`), so a
//! worker pool shares one queue without an external mutex.

pub mod channel {
    use std::collections::VecDeque;
    pub use std::sync::mpsc::{RecvError, TryRecvError};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        cap: usize,
        state: Mutex<State<T>>,
        /// Signalled when a value is queued or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when a value is taken or the last receiver leaves.
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A panic while holding the lock cannot leave the queue in a
            // broken state (push/pop are atomic under it), so poisoning
            // is safe to shrug off.
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.not_empty.notify_all();
            }
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once every receiver
        /// is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.0.cap {
                    state.queue.push_back(value);
                    drop(state);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .0
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// A shared handle on the consuming end. Cloning yields another
    /// consumer of the *same* queue (each value is delivered to exactly
    /// one receiver); the channel disconnects for senders only when the
    /// last clone is dropped.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; errors once every sender is
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .0
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.lock();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Iterator of received values; ends when the channel disconnects.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Owning iterator of received values.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    /// A bounded channel holding at most `cap` in-flight messages.
    /// Zero-capacity rendezvous channels are not supported; `cap` is
    /// clamped to at least 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            cap: cap.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn receiver_iteration_ends_when_senders_drop() {
        let (tx, rx) = bounded(2);
        let worker = std::thread::spawn(move || rx.into_iter().count());
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 10);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn send_fails_only_after_last_receiver_drops() {
        let (tx, rx) = bounded::<u8>(2);
        let rx2 = rx.clone();
        drop(rx);
        tx.send(7).unwrap();
        assert_eq!(rx2.recv().unwrap(), 7);
        drop(rx2);
        assert!(tx.send(8).is_err());
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = bounded::<u32>(64);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>(), "each value exactly once");
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the consumer takes 0
            "sent"
        });
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(producer.join().unwrap(), "sent");
    }
}
