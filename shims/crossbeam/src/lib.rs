//! Offline drop-in subset of `crossbeam`.
//!
//! Only the `channel::bounded` surface is provided, backed by
//! `std::sync::mpsc::sync_channel`, which has the same semantics the
//! staging transport depends on: bounded capacity, blocking `send` when
//! full, and receiver iteration that ends when every sender is dropped.

pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once the receiver is
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// A bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn receiver_iteration_ends_when_senders_drop() {
        let (tx, rx) = bounded(2);
        let worker = std::thread::spawn(move || rx.into_iter().count());
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 10);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
