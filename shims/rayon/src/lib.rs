//! Offline drop-in subset of `rayon`.
//!
//! The workspace uses rayon for straightforward fork-join data
//! parallelism: `par_iter`/`into_par_iter`/`par_chunks` followed by
//! `map`/`enumerate`/`flat_map_iter` and a `collect` into `Vec` or
//! `Result<Vec, E>`. This shim keeps those call sites source-compatible
//! while executing on real OS threads (`std::thread::scope`), so the
//! parallel decimation/compression paths still exercise genuine
//! concurrency — important for the lock-free observability counters,
//! whose property tests hammer them from these threads.
//!
//! Differences from upstream worth knowing:
//! - combinators are *eager*: each `map` runs to completion (in
//!   parallel, order-preserving) before the next adapter sees data;
//! - there is no work-stealing pool: every `map` splits its input into
//!   at most `available_parallelism()` contiguous chunks, one thread
//!   each, honouring `with_min_len` as both a split floor and a
//!   sequential cutoff (a batch that fits one worker runs inline);
//! - `collect::<Result<_, E>>()` surfaces the first error by input
//!   order, matching the upstream contract closely enough for the
//!   codec paths that rely on it.

use std::ops::Range;

/// Run `f` over `items` on real threads, preserving input order.
///
/// Splits into at most `available_parallelism()` contiguous chunks and
/// processes each on its own scoped thread. A panicking worker
/// propagates the panic to the caller, like rayon.
///
/// `min_len` is the smallest number of items a worker is worth spawning
/// for (rayon's `with_min_len` contract): the split never produces more
/// than `n / min_len` workers, and when that rounds down to one the
/// whole batch runs inline on the caller's thread — so per-chunk codec
/// calls and other small fan-outs don't pay thread-spawn overhead.
fn par_apply<I, O, F>(items: Vec<I>, min_len: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let min_len = min_len.max(1);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n / min_len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(workers);

    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// An eagerly materialised "parallel iterator": the item sequence is
/// held in order, and parallel work happens inside each combinator.
pub struct ParIter<I> {
    items: Vec<I>,
    min_len: usize,
}

impl<I> ParIter<I> {
    fn over(items: Vec<I>) -> Self {
        ParIter { items, min_len: 1 }
    }
}

impl<I: Send> ParIter<I> {
    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParIter {
            items: par_apply(self.items, self.min_len, f),
            min_len: self.min_len,
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Parallel over outer items, sequential over each produced
    /// iterator — rayon's `flat_map_iter` contract.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<U::Item>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(I) -> U + Sync,
    {
        let nested = par_apply(self.items, self.min_len, |item| {
            f(item).into_iter().collect::<Vec<_>>()
        });
        ParIter {
            items: nested.into_iter().flatten().collect(),
            min_len: 1,
        }
    }

    /// Don't split finer than `min` items per worker; batches smaller
    /// than `2 * min` run inline with no thread spawns.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        par_apply(self.items, self.min_len, f);
    }

    pub fn collect<C: FromParVec<I>>(self) -> C {
        C::from_par_vec(self.items)
    }
}

/// Collection targets for [`ParIter::collect`].
pub trait FromParVec<T> {
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParVec<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// `collect::<Result<C, E>>()` short-circuits on the first `Err` in
/// input order.
impl<T, E, C: FromParVec<T>> FromParVec<Result<T, E>> for Result<C, E> {
    fn from_par_vec(items: Vec<Result<T, E>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_par_vec(ok))
    }
}

/// `.into_par_iter()` on owned collections / ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter::over(self)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter::over(self.collect())
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter::over(self.collect())
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter::over(self.collect())
    }
}

/// `.par_iter()` on slices (and, via deref, `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter::over(self.iter().collect())
    }
}

/// `.par_chunks(n)` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::over(self.chunks(chunk_size).collect())
    }
}

/// `.par_chunks_mut(n)` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::over(self.chunks_mut(chunk_size).collect())
    }
}

pub mod prelude {
    pub use crate::{
        FromParVec, IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_on_multiple_threads() {
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // At least 2 distinct workers on any multi-core box.
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(ids.into_inner().unwrap().len() > 1);
        }
    }

    #[test]
    fn collect_result_short_circuits_in_order() {
        let r: Result<Vec<i32>, String> = vec![Ok(1), Err("a".to_string()), Err("b".to_string())]
            .into_par_iter()
            .collect();
        assert_eq!(r, Err("a".to_string()));
    }

    #[test]
    fn par_chunks_and_flat_map_iter() {
        let data: Vec<i32> = (0..103).collect();
        let doubled: Vec<i32> = data
            .par_chunks(10)
            .flat_map_iter(|c| c.iter().map(|&x| x * 2).collect::<Vec<_>>())
            .collect();
        assert_eq!(doubled, (0..103).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_writes_in_place() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ci * 10 + i;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_enumerate() {
        let v = ["a", "b", "c"];
        let out: Vec<(usize, String)> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.to_string()))
            .collect();
        assert_eq!(out, vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]);
    }

    #[test]
    fn with_min_len_runs_small_batches_inline() {
        // 4 items with min_len 4 → a single worker → the caller's thread.
        let caller = std::thread::current().id();
        let ids: Vec<_> = (0..4usize)
            .into_par_iter()
            .with_min_len(4)
            .map(|_| std::thread::current().id())
            .collect();
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn with_min_len_still_splits_large_batches() {
        let out: Vec<usize> = (0..1000usize)
            .into_par_iter()
            .with_min_len(64)
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_never_spawns() {
        let caller = std::thread::current().id();
        let ids: Vec<_> = vec![0u8]
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn no_lost_updates_across_threads() {
        let counter = AtomicUsize::new(0);
        (0..10_000usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 10_000);
    }
}
