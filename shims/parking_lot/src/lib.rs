//! Offline drop-in subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the poison-free `parking_lot`
//! surface the workspace codes against: `lock()`/`read()`/`write()`
//! return guards directly instead of `Result`s. A poisoned std lock
//! (a writer panicked) ignores the poison, matching `parking_lot`'s
//! semantics of not propagating panics through locks.

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive (poison-free surface).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (poison-free surface).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
