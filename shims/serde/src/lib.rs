//! Offline drop-in subset of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the matching
//! derive macros so existing annotations compile unchanged. The traits
//! are empty markers: nothing in the workspace is generic over them, and
//! the observability layer serializes through its own explicit JSON
//! model (`canopus_obs::json`) rather than serde's data model.

/// Marker: the type is intended to be serializable.
pub trait Serialize {}

/// Marker: the type is intended to be deserializable.
pub trait Deserialize<'de> {}

/// Marker mirroring serde's owned-deserialization shorthand.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
