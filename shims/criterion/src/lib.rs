//! Offline drop-in subset of `criterion`.
//!
//! Enough of the criterion surface for the workspace's `harness = false`
//! bench targets to compile and produce useful numbers under
//! `cargo bench`: benchmark groups, per-benchmark closures, byte
//! throughput annotation, and a mean wall-clock report. There is no
//! statistical machinery — each benchmark runs a warmup pass plus
//! `sample_size` timed iterations and reports the mean.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warmup: one untimed pass.
        f(&mut b);
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.iters > 0 {
            b.elapsed.as_secs_f64() / b.iters as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.1} elem/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "  {}/{id}: {:>12.3} us/iter over {} iters{rate}",
            self.name,
            mean * 1e6,
            b.iters
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(std::hint::black_box(out));
    }
}

/// Prevent the optimiser from discarding a value (criterion re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.sample_size(3)
            .throughput(Throughput::Bytes(1024))
            .bench_function("noop", |b| b.iter(|| calls += 1));
        g.finish();
        // warmup + 3 samples, one iter each
        assert_eq!(calls, 4);
    }
}
