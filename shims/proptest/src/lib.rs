//! Offline drop-in subset of `proptest`.
//!
//! Implements the slice of the proptest surface this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`,
//! `Just`, `any::<T>()`, numeric-range and tuple strategies,
//! `prop_map`, `collection::vec`, and regex-literal string strategies
//! of the shape `"[class]{m,n}"`.
//!
//! Differences from upstream:
//! - **no shrinking** — a failing case reports its inputs but is not
//!   minimised;
//! - **deterministic RNG** — each test derives its seed from the test's
//!   full module path, so failures reproduce exactly across runs
//!   (override with `PROPTEST_SEED`);
//! - default case count is 64 (upstream: 256); override per block with
//!   `ProptestConfig::with_cases` or globally with `PROPTEST_CASES`.

pub mod test_runner {
    /// Outcome of a single property case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — resample.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Abort after this many consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    /// Deterministic xorshift64* generator seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    return Self { state: seed | 1 };
                }
            }
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `sample`
    /// produces a concrete value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_oneof!` support: uniformly picks one of the boxed arms.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })+
        };
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! range_strategy_int {
        ($($t:ty),+) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = rng.next_u64() as u128 % span;
                    (self.start as i128 + r as i128) as $t
                }
            })+
        };
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A:0, B:1);
    tuple_strategy!(A:0, B:1, C:2);
    tuple_strategy!(A:0, B:1, C:2, D:3);
    tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
    tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);
    tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6);
    tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7);
    tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8);
    tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9);

    /// Regex-literal string strategy for the subset `"[class]{m,n}"`
    /// (or `{m}`) that the workspace's tests use. The class supports
    /// `a-z` style ranges and literal characters; a trailing `-` is a
    /// literal, as in real regex classes.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        if class.is_empty() {
            return None;
        }

        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                if lo > hi {
                    return None;
                }
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }

        let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match quant.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let m = quant.trim().parse().ok()?;
                (m, m)
            }
        };
        if max < min {
            return None;
        }
        Some((alphabet, min, max))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn class_patterns_parse() {
            let (alpha, lo, hi) = parse_class_pattern("[a-c_-]{1,4}").unwrap();
            assert_eq!(alpha, vec!['a', 'b', 'c', '_', '-']);
            assert_eq!((lo, hi), (1, 4));
            let (alpha, lo, hi) = parse_class_pattern("[ -~]{0,30}").unwrap();
            assert_eq!(alpha.len(), 95); // all printable ASCII
            assert_eq!((lo, hi), (0, 30));
        }

        #[test]
        fn ranges_respect_bounds() {
            let mut rng = TestRng::for_test("ranges_respect_bounds");
            for _ in 0..500 {
                let v = (-9i32..-1).sample(&mut rng);
                assert!((-9..-1).contains(&v));
                let f = (-1e6f64..1e6).sample(&mut rng);
                assert!((-1e6..1e6).contains(&f));
                let u = (16u64..256).sample(&mut rng);
                assert!((16..256).contains(&u));
            }
        }

        #[test]
        fn strings_match_pattern() {
            let mut rng = TestRng::for_test("strings_match_pattern");
            for _ in 0..200 {
                let s = "[a-z]{1,10}".sample(&mut rng);
                assert!((1..=10).contains(&s.len()));
                assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(elem, min..max)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match result {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name),
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {passed} passing cases: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {l:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple + map strategies compose.
        fn pair_ordering((a, b) in arb_pair()) {
            prop_assert!(a < b, "a={a} b={b}");
        }

        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..8]) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }

        fn assume_rejects_cleanly(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        fn vec_strategy_sizes(v in crate::collection::vec(0i32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("same-name");
        let mut b = TestRng::for_test("same-name");
        let sa: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
    }
}
