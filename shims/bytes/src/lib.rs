//! Offline drop-in subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API Canopus actually uses: an
//! immutable, cheaply-clonable byte buffer backed by an `Arc<Vec<u8>>`.
//! Clones share the allocation, matching the upstream cost model that the
//! storage device relies on ("cheap clone of a refcounted buffer"), and
//! `From<Vec<u8>>` adopts the vector's heap block without copying — the
//! property the zero-copy fetch→decode read path depends on.

use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer (no allocation shared with anything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static slice. (Copies once; the upstream zero-copy trick is
    /// irrelevant at our scales and keeps this shim allocation-simple.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-window of this buffer sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len());
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts `v`'s heap allocation: no copy, no reallocation. The
    /// fetch→decode hot path hands device payloads across threads this
    /// way, so pointer identity is load-bearing (and pinned by test).
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "\u{2026}({} B)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
    }

    #[test]
    fn slices_share_allocation() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn from_vec_adopts_allocation_zero_copy() {
        let v = vec![9u8, 8, 7, 6];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "From<Vec<u8>> must not copy");
        // Slices and clones keep pointing into the same allocation.
        let s = b.slice(1..4);
        assert_eq!(s.as_slice().as_ptr(), ptr.wrapping_add(1));
        let c = b.clone();
        assert_eq!(c.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").to_vec(), b"abc".to_vec());
    }
}
