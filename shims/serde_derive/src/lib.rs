//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — no code takes `T: Serialize` bounds and no
//! generic serializer runs. These derives therefore expand to nothing,
//! which keeps every annotated type compiling without crates.io access.
//! Types that genuinely need serialization (the observability snapshot)
//! implement `canopus_obs`'s explicit JSON conversion instead.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
