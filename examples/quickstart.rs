//! Quickstart: refactor a field, place it on a two-tier hierarchy, and
//! read it back progressively.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use canopus::{Canopus, CanopusConfig};
use canopus_data::xgc1_dataset_sized;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn main() {
    // A synthetic fusion plane: ~3.5k vertices of `dpot` on an annulus.
    let ds = xgc1_dataset_sized(20, 100, 7);
    let raw_bytes = ds.data.len() * 8;
    println!(
        "dataset: {} ({}), {} vertices, {} triangles, {} raw bytes",
        ds.name,
        ds.var,
        ds.mesh.num_vertices(),
        ds.mesh.num_triangles(),
        raw_bytes
    );

    // Titan-like testbed: a small fast tmpfs slice over a big slow Lustre
    // share. The tmpfs slice is deliberately too small for the raw data.
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(
        raw_bytes as u64 / 4,
        64 * raw_bytes as u64,
    ));
    let canopus = Canopus::new(Arc::clone(&hierarchy), CanopusConfig::default());

    // Refactor (3 levels), compress (ZFP-like) and place.
    let report = canopus
        .write("xgc1.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    println!("\nwrite: {} products placed:", report.products.len());
    for p in &report.products {
        println!(
            "  {:24} {:>9} B on tier {} ({})",
            p.key,
            p.stored_bytes,
            p.tier,
            hierarchy.tier_spec(p.tier).expect("tier").name
        );
    }
    println!(
        "phases: decimation {:.1} ms, delta {:.1} ms, compress {:.1} ms, I/O {:.1} ms (simulated)",
        report.decimation_secs * 1e3,
        report.delta_secs * 1e3,
        report.compress_secs * 1e3,
        report.io_time.seconds() * 1e3,
    );

    // Progressive retrieval: base first, refine to full accuracy.
    let reader = canopus.open("xgc1.bp").expect("open");
    let mut prog = reader.progressive(ds.var).expect("progressive");
    println!(
        "\nbase level L{}: {} vertices, read in {:.2} ms (I/O, simulated)",
        prog.level(),
        prog.num_vertices(),
        prog.last_timing().io_secs * 1e3
    );
    while !prog.at_full_accuracy() {
        let step = prog.refine().expect("refine");
        println!(
            "refined to L{}: {} vertices  (+{:.2} ms I/O, +{:.2} ms restore, delta RMS {:.3})",
            prog.level(),
            prog.num_vertices(),
            step.io_secs * 1e3,
            step.restore_secs * 1e3,
            prog.last_delta_rms().expect("rms")
        );
    }

    // Verify the restored full-accuracy data against the original.
    let restored = prog.data();
    let max_err = restored
        .iter()
        .zip(&ds.data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nfull accuracy restored, max error vs original: {max_err:.3e}");
}
