//! Focused data retrieval (paper §III-E / §IV-D): scan at low accuracy,
//! then zoom a region of interest to higher accuracy by fetching only the
//! delta chunks that intersect it — "reading smaller subsets of high
//! accuracy data".
//!
//! ```text
//! cargo run --release --example region_zoom
//! ```

use canopus::{Canopus, CanopusConfig};
use canopus_analytics::blob::{BlobDetector, BlobParams};
use canopus_analytics::raster::Raster;
use canopus_data::xgc1_dataset_sized;
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn main() {
    let ds = xgc1_dataset_sized(32, 160, 19);
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 4,
                ..Default::default()
            },
            delta_chunks: 16, // spatial chunks enable focused retrieval
            ..Default::default()
        },
    );
    canopus
        .write("xgc1.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");

    let reader = canopus.open("xgc1.bp").expect("open");
    reader.warm_metadata(ds.var).expect("warm");

    // --- scan pass: detect candidate blobs on the cheap base ---
    let base = reader.read_base(ds.var).expect("base");
    let bounds = ds.mesh.aabb();
    let raster = Raster::from_mesh(&base.mesh, &base.data, 256, 256, bounds);
    let (lo, hi) = raster.value_range().expect("covered");
    let detector = BlobDetector::new(BlobParams::paper_config(10, 200, 50));
    let blobs = detector.detect(&raster.to_gray(lo, hi));
    println!(
        "scan pass: L{} ({} vertices) found {} candidate blobs for {:.2} ms of I/O",
        base.level,
        base.data.len(),
        blobs.len(),
        base.timing.io_secs * 1e3
    );
    let Some(target) = blobs.first() else {
        println!("no blobs found; nothing to zoom into");
        return;
    };

    // --- zoom pass: refine only a window around the brightest blob ---
    let to_world = |px: f64, py: f64| {
        Point2::new(
            bounds.min.x + bounds.width() * px / 256.0,
            bounds.min.y + bounds.height() * py / 256.0,
        )
    };
    let c = to_world(target.center.0, target.center.1);
    let r = target.radius / 256.0 * bounds.width() * 2.0;
    let window = Aabb::from_points([Point2::new(c.x - r, c.y - r), Point2::new(c.x + r, c.y + r)]);
    println!(
        "zoom window around blob at ({:.2}, {:.2}), half-size {:.2}",
        c.x, c.y, r
    );

    let mut current = base;
    while current.level > 0 {
        let (next, stats) = reader
            .refine_region(ds.var, &current, window)
            .expect("refine region");
        println!(
            "  L{} -> L{}: fetched {}/{} chunks ({} B), {} of {} vertices level-exact, +{:.2} ms I/O",
            current.level,
            next.level,
            stats.chunks_read,
            stats.chunks_total,
            stats.bytes_read,
            stats.exact_vertices,
            next.data.len(),
            next.timing.io_secs * 1e3
        );
        current = next;
    }

    // Compare with the cost of full refinement to L0.
    let reader2 = canopus.open("xgc1.bp").expect("open2");
    reader2.warm_metadata(ds.var).expect("warm2");
    let full = reader2.read_level(ds.var, 0).expect("full");
    println!(
        "\nfull-accuracy restore everywhere would cost {:.2} ms of I/O; \
         the focused zoom paid {:.2} ms",
        full.timing.io_secs * 1e3,
        current.timing.io_secs * 1e3
    );
}
