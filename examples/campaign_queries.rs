//! Campaign workflow: write many timesteps, find interesting ones from
//! metadata alone, then analyze only those — the "written once but
//! analyzed a number of times" pattern the paper designs for, combined
//! with ADIOS-style query pushdown.
//!
//! ```text
//! cargo run --release --example campaign_queries
//! ```

use canopus::{Campaign, Canopus, CanopusConfig};
use canopus_analytics::errors::compare;
use canopus_data::xgc1_dataset_sized;
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn main() {
    let ds = xgc1_dataset_sized(20, 100, 23);
    let steps = 12u64;
    let raw = (ds.data.len() * 8) as u64 * steps;
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(
        Arc::clone(&hierarchy),
        CanopusConfig {
            delta_chunks: 8, // enables estimate-only refinement below
            ..Default::default()
        },
    );
    let campaign = Campaign::new(&canopus, "discharge");

    // A growing instability: blob amplitudes ramp with the timestep.
    println!("writing {steps} timesteps of {} ({})...", ds.name, ds.var);
    for step in 0..steps {
        let amp = (step + 1) as f64 / steps as f64;
        let data: Vec<f64> = ds.data.iter().map(|v| v * amp).collect();
        campaign
            .write_step(step, ds.var, &ds.mesh, &data)
            .expect("write step");
    }
    println!(
        "campaign holds steps {:?}, clock at {:.1} ms simulated",
        campaign.steps(),
        hierarchy.clock().now().seconds() * 1e3
    );

    // Which timesteps can possibly contain potential above 70% of the
    // final amplitude? Answered from block min/max metadata — zero
    // payload I/O.
    let data_max = ds.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let threshold = 0.7 * data_max;
    let candidates = campaign
        .steps_possibly_in_range(ds.var, threshold, f64::INFINITY)
        .expect("pushdown query");
    println!(
        "\nthreshold query (dpot >= {threshold:.1}): {} of {} timesteps remain, {} skipped with no data I/O",
        candidates.len(),
        steps,
        steps as usize - candidates.len()
    );

    // Analyze only the candidates. For each, quantify what a *free*
    // upsampling of the base (estimate-only, no delta I/O) misses versus
    // the true full restore: refine through an empty window so zero
    // chunks are fetched, then compare with Laney-style error metrics.
    let nowhere = Aabb::from_points([Point2::new(1e6, 1e6), Point2::new(1e6 + 1.0, 1e6 + 1.0)]);
    for &step in candidates.iter().take(3) {
        let reader = campaign.open_step(step).expect("open");
        reader.warm_metadata(ds.var).expect("warm");
        let base = reader.read_base(ds.var).expect("base");
        let mut estimate_only = base.clone();
        while estimate_only.level > 0 {
            estimate_only = reader
                .refine_region(ds.var, &estimate_only, nowhere)
                .expect("estimate-only refine")
                .0;
        }
        let full = reader.read_level(ds.var, 0).expect("full");
        let report = compare(&full.data, &estimate_only.data);
        println!(
            "step {step}: base read {:.2} ms I/O; estimate-only upsample vs true L0:              PSNR {:.1} dB, NRMSE {:.4}, max rel tail @1e-2 = {:.1}%",
            base.timing.io_secs * 1e3,
            report.psnr_db,
            report.nrmse,
            report.fraction_at_least(2) * 100.0,
        );
    }
    println!("\n(the skipped timesteps were never read at all)");
}
