//! The paper's §IV-D/E use case: progressive blob exploration on fusion
//! data.
//!
//! A scientist scans the cheap base dataset for high-potential blobs; if
//! the coarse pass finds features, they refine and re-detect, comparing
//! what survives at each accuracy. Renders each level to `out/`.
//!
//! ```text
//! cargo run --release --example fusion_blob_exploration
//! ```

use canopus::{Canopus, CanopusConfig};
use canopus_analytics::blob::{BlobDetector, BlobParams};
use canopus_analytics::metrics::{overlap_ratio, BlobMetrics};
use canopus_analytics::raster::Raster;
use canopus_analytics::render;
use canopus_data::xgc1_dataset_sized;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

const RASTER: usize = 256;

fn main() {
    let ds = xgc1_dataset_sized(32, 160, 11);
    let bounds = ds.mesh.aabb();
    let raw = (ds.data.len() * 8) as u64;

    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(
        hierarchy,
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 5, // base at 16x decimation
                ..Default::default()
            },
            ..Default::default()
        },
    );
    canopus
        .write("xgc1.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");

    // Reference detection at full accuracy (for the overlap metric only —
    // a real exploration would not have this).
    let full_raster = Raster::from_mesh(&ds.mesh, &ds.data, RASTER, RASTER, bounds);
    let (lo, hi) = full_raster.value_range().expect("covered");
    let detector = BlobDetector::new(BlobParams::paper_config(10, 200, 50));
    let reference = detector.detect(&full_raster.to_gray(lo, hi));
    println!("full-accuracy reference: {} blobs\n", reference.len());

    let reader = canopus.open("xgc1.bp").expect("open");
    let mut prog = reader.progressive(ds.var).expect("progressive");
    std::fs::create_dir_all("out").expect("mkdir out");

    loop {
        let raster = Raster::from_mesh(prog.mesh(), prog.data(), RASTER, RASTER, bounds);
        let blobs = detector.detect(&raster.to_gray(lo, hi));
        let m = BlobMetrics::of(&blobs);
        let overlap = overlap_ratio(&blobs, &reference);
        println!(
            "L{} ({:>6} vertices): {:>2} blobs, avg diameter {:>5.1} px, overlap {:.2}, cumulative I/O {:.2} ms",
            prog.level(),
            prog.num_vertices(),
            m.count,
            m.avg_diameter,
            overlap,
            prog.cumulative_timing().io_secs * 1e3
        );
        let img = render::render_blobs(&raster, lo, hi, &blobs);
        let path = format!("out/exploration_L{}.ppm", prog.level());
        let mut f = std::fs::File::create(&path).expect("create ppm");
        img.write_ppm(&mut f).expect("write ppm");

        if prog.at_full_accuracy() {
            break;
        }
        // Scientist's decision rule: refine while the coarse view shows
        // blobs at all (they are worth resolving) and accuracy remains.
        prog.refine().expect("refine");
    }

    println!("\nrendered each level to out/exploration_L*.ppm");
}
