//! Codec study: compare the ZFP-like, SZ-like and FPC codecs on a raw
//! field and on its Canopus delta. The block-transform codec (ZFP-like)
//! benefits most from delta pre-conditioning — which is exactly why the
//! paper pairs Canopus with ZFP.
//!
//! ```text
//! cargo run --release --example compression_study
//! ```

use canopus_compress::{stats::measure, Codec, Fpc, RawCodec, SzLike, ZfpLike};
use canopus_data::cfd_dataset_sized;
use canopus_mesh::FieldStats;
use canopus_refactor::decimate::decimate;
use canopus_refactor::mapping::build_mapping;
use canopus_refactor::{compute_delta, Estimator};

fn main() {
    let ds = cfd_dataset_sized(60, 48, 5);
    let range = FieldStats::of(&ds.data).range();
    let tol = 1e-4 * range;
    println!(
        "dataset: {} ({}), {} values, range {:.3}, abs tolerance {:.2e}\n",
        ds.name,
        ds.var,
        ds.data.len(),
        range,
        tol
    );

    let dec = decimate(&ds.mesh, &ds.data, 2.0);
    let mapping = build_mapping(&ds.mesh, &dec.mesh);
    let delta = compute_delta(
        &ds.mesh,
        &ds.data,
        &dec.mesh,
        &dec.data,
        &mapping,
        Estimator::Mean,
    );

    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(RawCodec),
        Box::new(Fpc::new()),
        Box::new(SzLike::with_error_bound(tol)),
        Box::new(ZfpLike::with_tolerance(tol)),
    ];

    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "codec", "field ratio", "delta ratio", "field err", "delta err"
    );
    for codec in &codecs {
        let field = measure(codec.as_ref(), &ds.data).expect("field");
        let d = measure(codec.as_ref(), &delta).expect("delta");
        println!(
            "{:<10} {:>13.2}x {:>13.2}x {:>12.2e} {:>12.2e}",
            codec.name(),
            field.ratio(),
            d.ratio(),
            field.max_error,
            d.max_error
        );
    }

    println!(
        "\nThe block-transform codec (zfp-like) gains the most from the \
         delta's smoothness — the pre-conditioner effect the paper pairs \
         Canopus with ZFP for (§III-C3). Prediction-based codecs already \
         exploit local correlation, so their delta gains are smaller."
    );
}
