//! Placement across a deep (4-tier) storage hierarchy, and automated
//! RMSE-terminated progressive retrieval.
//!
//! The paper motivates NVRAM/burst-buffer/PFS/campaign stacks on
//! Summit-class machines; this example shows the rank-spread placement
//! policy mapping base → NVRAM and successive deltas down the pyramid,
//! with per-tier traffic accounting.
//!
//! ```text
//! cargo run --release --example progressive_storage
//! ```

use canopus::{Canopus, CanopusConfig};
use canopus_data::genasis_dataset_sized;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn main() {
    let ds = genasis_dataset_sized(40, 120, 3);
    let raw = (ds.data.len() * 8) as u64;
    println!(
        "dataset: {} ({}), {} vertices, {} KiB raw",
        ds.name,
        ds.var,
        ds.data.len(),
        raw / 1024
    );

    // A Summit-like deep hierarchy. Capacities shrink toward the top so
    // only the smallest products fit the fastest tiers.
    let hierarchy = Arc::new(StorageHierarchy::deep_four_tier(
        raw / 6,  // nvram
        raw / 2,  // burst buffer
        raw * 8,  // parallel file system
        raw * 64, // campaign storage
    ));
    let canopus = Canopus::new(
        Arc::clone(&hierarchy),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let report = canopus
        .write("gen.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");

    println!("\nplacement (rank-spread policy):");
    for p in &report.products {
        println!(
            "  {:24} {:>9} B -> tier {} ({})",
            p.key,
            p.stored_bytes,
            p.tier,
            hierarchy.tier_spec(p.tier).expect("tier").name
        );
    }

    // Automated progressive retrieval: stop when the adjacent-level RMSE
    // falls below a science-driven threshold.
    let reader = canopus.open("gen.bp").expect("open");
    let mut prog = reader.progressive(ds.var).expect("progressive");
    let threshold = 0.02;
    let steps = prog.refine_until(threshold).expect("refine_until");
    let rms = prog.last_delta_rms().unwrap_or(0.0);
    let reason = if rms < threshold {
        format!("delta RMS {rms:.4} fell below threshold {threshold}")
    } else {
        "full accuracy reached".to_string()
    };
    println!(
        "\nautomated retrieval: {} refinement step(s); stopped at L{} ({reason})",
        steps,
        prog.level(),
    );

    println!("\nper-tier traffic:");
    for t in 0..hierarchy.num_tiers() {
        let spec = hierarchy.tier_spec(t).expect("tier");
        let stats = hierarchy.tier_stats(t).expect("stats");
        println!(
            "  {:13} wrote {:>9} B in {:>9.3} ms | read {:>9} B in {:>9.3} ms",
            spec.name,
            stats.bytes_written,
            stats.write_time.seconds() * 1e3,
            stats.bytes_read,
            stats.read_time.seconds() * 1e3,
        );
    }
}
