//! Integration tests for focused data retrieval (paper §III-E/§IV-D:
//! "reading smaller subsets of high accuracy data"): deltas written in
//! spatial chunks, regions refined by fetching only intersecting chunks.

use bytes::Bytes;
use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_adios::FileMeta;
use canopus_data::xgc1_dataset_sized;
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_obs::names;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

const CHUNKS: u32 = 8;

fn setup_with(
    chunks: u32,
    codec: RelativeCodec,
    sharded: bool,
) -> (canopus_data::Dataset, Canopus) {
    let ds = xgc1_dataset_sized(16, 80, 33);
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 3,
                ..Default::default()
            },
            codec,
            delta_chunks: chunks,
            spatial_chunking: sharded,
            ..Default::default()
        },
    );
    canopus
        .write("roi.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (ds, canopus)
}

fn setup(chunks: u32) -> (canopus_data::Dataset, Canopus) {
    // Raw codec: exactness makes assertions crisp.
    setup_with(chunks, RelativeCodec::Raw, false)
}

/// A quadrant of the annulus.
fn quadrant() -> Aabb {
    Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.1, 1.1)])
}

#[test]
fn chunked_full_read_matches_unchunked() {
    let (ds, chunked) = setup(CHUNKS);
    let (_, plain) = setup(1);
    let a = chunked
        .open("roi.bp")
        .unwrap()
        .read_level(ds.var, 0)
        .unwrap();
    let b = plain.open("roi.bp").unwrap().read_level(ds.var, 0).unwrap();
    assert_eq!(a.mesh, b.mesh);
    assert_eq!(a.data, b.data, "chunking must not change full restores");
}

#[test]
fn region_refinement_reads_fewer_chunks_and_bytes() {
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    reader.warm_metadata(ds.var).unwrap();
    let base = reader.read_base(ds.var).unwrap();

    let (_, stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert_eq!(stats.chunks_total, CHUNKS as usize);
    assert!(
        stats.chunks_read < stats.chunks_total,
        "a quadrant must not need every chunk: {stats:?}"
    );
    assert!(stats.chunks_read >= 1, "the quadrant is covered by data");
    assert!(stats.exact_vertices > 0);
    assert!((stats.exact_vertices as f64) < 0.95 * ds.len() as f64);

    // And the I/O cost is under the full refinement's.
    let (_, full_stats) = reader.refine_region(ds.var, &base, ds.mesh.aabb()).unwrap();
    assert_eq!(full_stats.chunks_read, full_stats.chunks_total);
    assert!(stats.bytes_read < full_stats.bytes_read);
}

#[test]
fn region_values_are_exact_inside_coarse_outside() {
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    let base = reader.read_base(ds.var).unwrap();
    let region = quadrant();

    let (roi, stats) = reader.refine_region(ds.var, &base, region).unwrap();
    let (full, _) = reader.refine_once(ds.var, &base).unwrap();
    assert_eq!(roi.level, full.level);
    assert_eq!(roi.mesh, full.mesh);

    // Inside the region every vertex matches the full refinement exactly
    // (Raw codec; same estimate arithmetic). We check via chunk ranges:
    // every vertex the stats call exact must equal the full restore.
    let mut exact_matches = 0usize;
    let mut coarse_only = 0usize;
    for v in 0..roi.data.len() {
        if roi.data[v] == full.data[v] {
            exact_matches += 1;
        } else {
            coarse_only += 1;
        }
    }
    assert!(
        exact_matches >= stats.exact_vertices,
        "all fetched-chunk vertices must be exact: {exact_matches} < {}",
        stats.exact_vertices
    );
    assert!(coarse_only > 0, "outside vertices carry the estimate only");

    // Strong check inside the region proper.
    for (v, p) in roi.mesh.points().iter().enumerate() {
        if region.contains(*p) {
            assert_eq!(
                roi.data[v], full.data[v],
                "vertex {v} at {p:?} inside the region must be level-exact"
            );
        }
    }
}

#[test]
fn unchunked_file_degrades_to_full_refinement() {
    let (ds, canopus) = setup(1);
    let reader = canopus.open("roi.bp").unwrap();
    let base = reader.read_base(ds.var).unwrap();
    let (roi, stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert_eq!(stats.chunks_total, 1);
    assert_eq!(stats.chunks_read, 1);
    assert_eq!(stats.exact_vertices, roi.data.len());
    let (full, _) = reader.refine_once(ds.var, &base).unwrap();
    assert_eq!(roi.data, full.data);
}

#[test]
fn region_refinement_at_full_accuracy_errors() {
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    let full = reader.read_level(ds.var, 0).unwrap();
    assert!(reader.refine_region(ds.var, &full, quadrant()).is_err());
}

#[test]
fn progressive_then_region_zoom_workflow() {
    // The paper's §IV-D workflow: "quickly scan for features at low
    // accuracy, then zoom into areas with features by fetching a subset
    // of high accuracy data."
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    reader.warm_metadata(ds.var).unwrap();

    // Scan pass: base only.
    let base = reader.read_base(ds.var).unwrap();
    let scan_io = base.timing.io_secs;

    // Zoom pass: one region refined to the next level.
    let (zoom, stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert!(zoom.data.len() > base.data.len());
    assert!(stats.chunks_read < stats.chunks_total);

    // Full refinement for comparison costs more I/O than the zoom.
    let (full, _) = reader.refine_once(ds.var, &base).unwrap();
    assert!(
        zoom.timing.io_secs < full.timing.io_secs,
        "zoom {} !< full {}",
        zoom.timing.io_secs,
        full.timing.io_secs
    );
    // Both cost more than the scan alone.
    assert!(zoom.timing.io_secs + scan_io > scan_io);
}

// ---------------------------------------------------------------------
// Morton-sharded layout (`spatial_chunking`, format rev CBP3)
// ---------------------------------------------------------------------

/// An octant of the bounding square: 1/8 of the domain area.
fn octant() -> Aabb {
    Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.1, 0.55)])
}

#[test]
fn sharded_full_read_matches_monolithic() {
    let (ds, sharded) = setup_with(CHUNKS, RelativeCodec::Raw, true);
    let (_, plain) = setup(1);
    let a = sharded
        .open("roi.bp")
        .unwrap()
        .read_level(ds.var, 0)
        .unwrap();
    let b = plain.open("roi.bp").unwrap().read_level(ds.var, 0).unwrap();
    assert_eq!(a.mesh, b.mesh);
    assert_eq!(a.data, b.data, "sharding must not change full restores");
}

#[test]
fn sharded_matches_chunked_for_every_codec() {
    // The sharded writer compresses each Morton chunk with the same
    // codec arguments the per-chunk legacy layout uses, so the decoded
    // values agree chunk for chunk — for lossy codecs too.
    for codec in [
        RelativeCodec::Raw,
        RelativeCodec::Fpc,
        RelativeCodec::ZfpLike {
            rel_tolerance: 1e-6,
        },
        RelativeCodec::SzLike {
            rel_error_bound: 1e-4,
        },
    ] {
        let (ds, sharded) = setup_with(CHUNKS, codec, true);
        let (_, chunked) = setup_with(CHUNKS, codec, false);
        let a = sharded
            .open("roi.bp")
            .unwrap()
            .read_level(ds.var, 0)
            .unwrap();
        let b = chunked
            .open("roi.bp")
            .unwrap()
            .read_level(ds.var, 0)
            .unwrap();
        assert_eq!(a.data, b.data, "full restore differs under {codec:?}");

        let ra = sharded.open("roi.bp").unwrap();
        let rb = chunked.open("roi.bp").unwrap();
        let base_a = ra.read_base(ds.var).unwrap();
        let base_b = rb.read_base(ds.var).unwrap();
        let (roi_a, _) = ra.refine_region(ds.var, &base_a, quadrant()).unwrap();
        let (roi_b, _) = rb.refine_region(ds.var, &base_b, quadrant()).unwrap();
        assert_eq!(
            roi_a.data, roi_b.data,
            "region refine differs under {codec:?}"
        );
    }
}

/// The tentpole's acceptance: a small region moves a strict subset of
/// the level's chunks — observable in the `canopus.read.chunks_*`
/// counters — and at most half the full level's tier bytes.
#[test]
fn sharded_small_region_moves_strict_chunk_and_byte_subset() {
    const SHARD_TEST_CHUNKS: u32 = 16;
    let (ds, canopus) = setup_with(SHARD_TEST_CHUNKS, RelativeCodec::Raw, true);
    let reader = canopus.open("roi.bp").unwrap().with_level_cache(0); // no chunk cache: every planned hit is a fetch
    reader.warm_metadata(ds.var).unwrap();
    let base = reader.read_base(ds.var).unwrap();

    let snap0 = canopus.metrics().snapshot();
    let (roi, stats) = reader.refine_region(ds.var, &base, octant()).unwrap();
    let snap1 = canopus.metrics().snapshot();

    let planned =
        snap1.counter(names::READ_CHUNKS_PLANNED) - snap0.counter(names::READ_CHUNKS_PLANNED);
    let fetched =
        snap1.counter(names::READ_CHUNKS_FETCHED) - snap0.counter(names::READ_CHUNKS_FETCHED);
    let skipped =
        snap1.counter(names::READ_CHUNKS_SKIPPED) - snap0.counter(names::READ_CHUNKS_SKIPPED);
    assert_eq!(
        planned, SHARD_TEST_CHUNKS as u64,
        "planned = level's chunk population"
    );
    assert_eq!(
        fetched, stats.chunks_read as u64,
        "cache off: every read chunk is fetched"
    );
    assert_eq!(skipped, planned - fetched);
    assert!(
        fetched < planned,
        "an octant region must not fetch every chunk: {fetched}/{planned}"
    );
    assert!(fetched >= 1, "the octant is covered by data");
    assert_eq!(stats.chunks_cached, 0);
    // Ranged chunk fetches land in the per-fetch latency histogram.
    let fetch_hist = snap1.histogram(names::READ_CHUNK_FETCH_HIST).count
        - snap0.histogram(names::READ_CHUNK_FETCH_HIST).count;
    assert_eq!(fetch_hist, fetched, "one histogram sample per ranged fetch");

    // Byte bound: the region's tier bytes are at most half the level's.
    let full_reader = canopus.open("roi.bp").unwrap().with_level_cache(0);
    let full_base = full_reader.read_base(ds.var).unwrap();
    let (full, full_stats) = full_reader
        .refine_region(ds.var, &full_base, ds.mesh.aabb())
        .unwrap();
    assert_eq!(full_stats.chunks_read, full_stats.chunks_total);
    assert!(
        2 * stats.bytes_read <= full_stats.bytes_read,
        "octant bytes {} must be <= half of level bytes {}",
        stats.bytes_read,
        full_stats.bytes_read
    );

    // Byte identity: inside the region the sharded refine equals the
    // full refinement exactly (Raw codec).
    for (v, p) in roi.mesh.points().iter().enumerate() {
        if octant().contains(*p) {
            assert_eq!(roi.data[v], full.data[v], "vertex {v} at {p:?}");
        }
    }
}

#[test]
fn sharded_chunk_cache_serves_repeat_regions() {
    let (ds, canopus) = setup_with(CHUNKS, RelativeCodec::Raw, true);
    let reader = canopus.open("roi.bp").unwrap();
    reader.warm_metadata(ds.var).unwrap();
    let base = reader.read_base(ds.var).unwrap();

    let (first, s1) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert_eq!(s1.chunks_cached, 0, "cold cache");
    assert!(s1.bytes_read > 0);

    let (second, s2) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert_eq!(second.data, first.data, "cache must not change results");
    assert_eq!(s2.chunks_read, s1.chunks_read);
    assert_eq!(
        s2.chunks_cached, s2.chunks_read,
        "repeat region is answered entirely from the chunk cache"
    );
    assert_eq!(s2.bytes_read, 0, "no tier I/O on the repeat");
}

/// Old manifests keep working: a CBP3 manifest downgraded to the CBP2
/// and CBP1 layouts still opens, restores, and region-refines
/// byte-identically via the monolithic (non-sharded) path.
#[test]
fn downgraded_manifests_keep_reading_monolithically() {
    let ds = xgc1_dataset_sized(16, 80, 33);
    let raw = (ds.data.len() * 8) as u64;
    let hier = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(
        hier.clone(),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 3,
                ..Default::default()
            },
            codec: RelativeCodec::Raw,
            delta_chunks: CHUNKS,
            ..Default::default()
        },
    );
    canopus.write("bc.bp", ds.var, &ds.mesh, &ds.data).unwrap();

    let reader = canopus.open("bc.bp").unwrap();
    let baseline_full = reader.read_level(ds.var, 0).unwrap();
    let base = reader.read_base(ds.var).unwrap();
    let (baseline_roi, baseline_stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();

    let key = "bc.bp/.bpmeta";
    let (bytes, _, _) = hier.read(key).unwrap();
    let meta = FileMeta::from_bytes(&bytes).unwrap();
    for (rev, downgraded) in [("CBP2", meta.to_bytes_v2()), ("CBP1", meta.to_bytes_v1())] {
        let tier = hier.find(key).unwrap();
        hier.remove(key).unwrap();
        hier.write_to_tier(tier, key, Bytes::from(downgraded))
            .unwrap();

        let r = canopus.open("bc.bp").unwrap().with_level_cache(0);
        let full = r.read_level(ds.var, 0).unwrap();
        assert_eq!(full.data, baseline_full.data, "{rev}: full restore differs");
        let b = r.read_base(ds.var).unwrap();
        let (roi, stats) = r.refine_region(ds.var, &b, quadrant()).unwrap();
        assert_eq!(roi.data, baseline_roi.data, "{rev}: region refine differs");
        assert_eq!(stats.chunks_total, baseline_stats.chunks_total, "{rev}");
        assert_eq!(stats.chunks_read, baseline_stats.chunks_read, "{rev}");
    }
}
