//! Integration tests for focused data retrieval (paper §III-E/§IV-D:
//! "reading smaller subsets of high accuracy data"): deltas written in
//! spatial chunks, regions refined by fetching only intersecting chunks.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_data::xgc1_dataset_sized;
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

const CHUNKS: u32 = 8;

fn setup(chunks: u32) -> (canopus_data::Dataset, Canopus) {
    let ds = xgc1_dataset_sized(16, 80, 33);
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 3,
                ..Default::default()
            },
            codec: RelativeCodec::Raw, // exactness makes assertions crisp
            delta_chunks: chunks,
            ..Default::default()
        },
    );
    canopus
        .write("roi.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (ds, canopus)
}

/// A quadrant of the annulus.
fn quadrant() -> Aabb {
    Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.1, 1.1)])
}

#[test]
fn chunked_full_read_matches_unchunked() {
    let (ds, chunked) = setup(CHUNKS);
    let (_, plain) = setup(1);
    let a = chunked
        .open("roi.bp")
        .unwrap()
        .read_level(ds.var, 0)
        .unwrap();
    let b = plain.open("roi.bp").unwrap().read_level(ds.var, 0).unwrap();
    assert_eq!(a.mesh, b.mesh);
    assert_eq!(a.data, b.data, "chunking must not change full restores");
}

#[test]
fn region_refinement_reads_fewer_chunks_and_bytes() {
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    reader.warm_metadata(ds.var).unwrap();
    let base = reader.read_base(ds.var).unwrap();

    let (_, stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert_eq!(stats.chunks_total, CHUNKS as usize);
    assert!(
        stats.chunks_read < stats.chunks_total,
        "a quadrant must not need every chunk: {stats:?}"
    );
    assert!(stats.chunks_read >= 1, "the quadrant is covered by data");
    assert!(stats.exact_vertices > 0);
    assert!((stats.exact_vertices as f64) < 0.95 * ds.len() as f64);

    // And the I/O cost is under the full refinement's.
    let (_, full_stats) = reader.refine_region(ds.var, &base, ds.mesh.aabb()).unwrap();
    assert_eq!(full_stats.chunks_read, full_stats.chunks_total);
    assert!(stats.bytes_read < full_stats.bytes_read);
}

#[test]
fn region_values_are_exact_inside_coarse_outside() {
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    let base = reader.read_base(ds.var).unwrap();
    let region = quadrant();

    let (roi, stats) = reader.refine_region(ds.var, &base, region).unwrap();
    let (full, _) = reader.refine_once(ds.var, &base).unwrap();
    assert_eq!(roi.level, full.level);
    assert_eq!(roi.mesh, full.mesh);

    // Inside the region every vertex matches the full refinement exactly
    // (Raw codec; same estimate arithmetic). We check via chunk ranges:
    // every vertex the stats call exact must equal the full restore.
    let mut exact_matches = 0usize;
    let mut coarse_only = 0usize;
    for v in 0..roi.data.len() {
        if roi.data[v] == full.data[v] {
            exact_matches += 1;
        } else {
            coarse_only += 1;
        }
    }
    assert!(
        exact_matches >= stats.exact_vertices,
        "all fetched-chunk vertices must be exact: {exact_matches} < {}",
        stats.exact_vertices
    );
    assert!(coarse_only > 0, "outside vertices carry the estimate only");

    // Strong check inside the region proper.
    for (v, p) in roi.mesh.points().iter().enumerate() {
        if region.contains(*p) {
            assert_eq!(
                roi.data[v], full.data[v],
                "vertex {v} at {p:?} inside the region must be level-exact"
            );
        }
    }
}

#[test]
fn unchunked_file_degrades_to_full_refinement() {
    let (ds, canopus) = setup(1);
    let reader = canopus.open("roi.bp").unwrap();
    let base = reader.read_base(ds.var).unwrap();
    let (roi, stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert_eq!(stats.chunks_total, 1);
    assert_eq!(stats.chunks_read, 1);
    assert_eq!(stats.exact_vertices, roi.data.len());
    let (full, _) = reader.refine_once(ds.var, &base).unwrap();
    assert_eq!(roi.data, full.data);
}

#[test]
fn region_refinement_at_full_accuracy_errors() {
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    let full = reader.read_level(ds.var, 0).unwrap();
    assert!(reader.refine_region(ds.var, &full, quadrant()).is_err());
}

#[test]
fn progressive_then_region_zoom_workflow() {
    // The paper's §IV-D workflow: "quickly scan for features at low
    // accuracy, then zoom into areas with features by fetching a subset
    // of high accuracy data."
    let (ds, canopus) = setup(CHUNKS);
    let reader = canopus.open("roi.bp").unwrap();
    reader.warm_metadata(ds.var).unwrap();

    // Scan pass: base only.
    let base = reader.read_base(ds.var).unwrap();
    let scan_io = base.timing.io_secs;

    // Zoom pass: one region refined to the next level.
    let (zoom, stats) = reader.refine_region(ds.var, &base, quadrant()).unwrap();
    assert!(zoom.data.len() > base.data.len());
    assert!(stats.chunks_read < stats.chunks_total);

    // Full refinement for comparison costs more I/O than the zoom.
    let (full, _) = reader.refine_once(ds.var, &base).unwrap();
    assert!(
        zoom.timing.io_secs < full.timing.io_secs,
        "zoom {} !< full {}",
        zoom.timing.io_secs,
        full.timing.io_secs
    );
    // Both cost more than the scan alone.
    assert!(zoom.timing.io_secs + scan_io > scan_io);
}
