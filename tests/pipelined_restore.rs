//! Pipelined-restore equivalence: the overlapped engine (bounded
//! prefetch + parallel decode + eager restore) must be observationally
//! identical to the serial base → L0 walk it replaced. Lossless codecs
//! restore bit-for-bit the same values through either engine; lossy
//! codecs stay inside their per-level error bound; region refinement and
//! the decoded-level cache change *when* work happens, never *what* the
//! reader returns.

use canopus::config::RelativeCodec;
use canopus::read::CanopusReader;
use canopus::{Canopus, CanopusConfig, FaultPlan, RetryPolicy};
use canopus_data::{all_datasets_small, xgc1_dataset_sized, Dataset};
use canopus_obs::names;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn written(ds: &Dataset, codec: RelativeCodec, levels: u32) -> Canopus {
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: levels,
                ..Default::default()
            },
            codec,
            ..Default::default()
        },
    );
    canopus
        .write("eq.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    canopus
}

/// A reader over the same stored bytes with the pre-pipeline serial walk
/// and no cache: the reference engine.
fn serial_reader(canopus: &Canopus) -> CanopusReader {
    canopus
        .open("eq.bp")
        .expect("open")
        .with_pipeline_depth(0)
        .with_level_cache(0)
}

/// The pipelined engine, cache disabled so every read exercises the
/// prefetch/decode/restore stages rather than a cached level.
fn pipelined_reader(canopus: &Canopus) -> CanopusReader {
    canopus.open("eq.bp").expect("open").with_level_cache(0)
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn value_range(data: &[f64]) -> f64 {
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// Lossless codecs: both engines must return bit-identical values and
/// meshes at every level, for hierarchies from 1 (base only, the
/// pipelined walk's empty-plan path) through 5 levels.
#[test]
fn lossless_restores_are_bit_identical_across_engines() {
    let ds = xgc1_dataset_sized(16, 80, 11);
    for codec in [RelativeCodec::Raw, RelativeCodec::Fpc] {
        for levels in 1..=5u32 {
            let canopus = written(&ds, codec, levels);
            for level in 0..levels {
                let a = serial_reader(&canopus)
                    .read_level(ds.var, level)
                    .expect("serial");
                let b = pipelined_reader(&canopus)
                    .read_level(ds.var, level)
                    .expect("pipelined");
                assert_eq!(
                    a.data, b.data,
                    "{codec:?} N={levels} level {level}: engines disagree"
                );
                assert_eq!(a.mesh.num_vertices(), b.mesh.num_vertices());
                assert_eq!(a.level, b.level);
            }
        }
    }
}

/// A field large enough to cross the chunk-framing threshold, so the
/// pipelined engine's parallel decode stage handles multi-chunk streams.
#[test]
fn chunked_streams_restore_identically() {
    let ds = xgc1_dataset_sized(64, 80, 5); // > 4096 vertices: chunk-framed
    let canopus = written(&ds, RelativeCodec::Fpc, 4);
    let a = serial_reader(&canopus)
        .read_level(ds.var, 0)
        .expect("serial");
    let b = pipelined_reader(&canopus)
        .read_level(ds.var, 0)
        .expect("pipelined");
    assert_eq!(a.data, b.data, "chunk-framed streams must decode the same");
}

/// Lossy codecs: deterministic decode means the engines still agree
/// exactly, and both land inside the accumulated per-level error bound.
#[test]
fn lossy_restores_agree_and_respect_error_bounds() {
    let rel = 1e-5;
    for ds in all_datasets_small(29) {
        for codec in [
            RelativeCodec::ZfpLike { rel_tolerance: rel },
            RelativeCodec::SzLike {
                rel_error_bound: rel,
            },
        ] {
            let levels = 3u32;
            let canopus = written(&ds, codec, levels);
            let a = serial_reader(&canopus)
                .read_level(ds.var, 0)
                .expect("serial");
            let b = pipelined_reader(&canopus)
                .read_level(ds.var, 0)
                .expect("pipelined");
            assert_eq!(a.data, b.data, "{}: lossy decode is deterministic", ds.name);
            // Base + (levels-1) deltas, each within rel * range.
            let bound = levels as f64 * rel * value_range(&ds.data);
            let err = max_err(&b.data, &ds.data);
            assert!(err <= bound, "{}: err {err} > bound {bound}", ds.name);
        }
    }
}

/// Region refinement reads chunk subsets outside the pipelined walk;
/// the engine configuration must not change what a window restores.
#[test]
fn region_refinement_is_engine_invariant() {
    let ds = xgc1_dataset_sized(16, 80, 17);
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 3,
                ..Default::default()
            },
            codec: RelativeCodec::Raw,
            delta_chunks: 8,
            ..Default::default()
        },
    );
    canopus
        .write("eq.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");

    let window = {
        let bb = ds.mesh.aabb();
        let cx = (bb.min.x + bb.max.x) / 2.0;
        let cy = (bb.min.y + bb.max.y) / 2.0;
        let hx = (bb.max.x - bb.min.x) / 4.0;
        let hy = (bb.max.y - bb.min.y) / 4.0;
        canopus_mesh::geometry::Aabb::from_points([
            canopus_mesh::geometry::Point2::new(cx - hx, cy - hy),
            canopus_mesh::geometry::Point2::new(cx + hx, cy + hy),
        ])
    };

    let serial = serial_reader(&canopus);
    let base_a = serial.read_base(ds.var).expect("base");
    let (roi_a, stats_a) = serial
        .refine_region(ds.var, &base_a, window)
        .expect("serial region");

    let piped = canopus.open("eq.bp").expect("open"); // default engine + cache
    let base_b = piped.read_base(ds.var).expect("base");
    let (roi_b, stats_b) = piped
        .refine_region(ds.var, &base_b, window)
        .expect("pipelined region");

    assert_eq!(roi_a.data, roi_b.data);
    assert_eq!(stats_a.chunks_read, stats_b.chunks_read);
    assert_eq!(stats_a.chunks_total, stats_b.chunks_total);
}

/// An explicitly disarmed fault plan — and a non-default retry budget —
/// is observationally invisible on the read side: both engines restore
/// the same bytes as the default configuration at every level, nothing
/// degrades, and no fault metric moves.
#[test]
fn disarmed_fault_plan_restores_identically() {
    let ds = xgc1_dataset_sized(16, 80, 11);
    let levels = 4u32;
    let baseline = written(&ds, RelativeCodec::Fpc, levels);
    let raw = (ds.data.len() * 8) as u64;
    let disarmed = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: levels,
                ..Default::default()
            },
            codec: RelativeCodec::Fpc,
            fault: FaultPlan::none(),
            retry: RetryPolicy {
                max_attempts: 7,
                ..RetryPolicy::new()
            },
            ..Default::default()
        },
    );
    disarmed
        .write("eq.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");

    for level in 0..levels {
        let a = pipelined_reader(&baseline)
            .read_level(ds.var, level)
            .expect("baseline");
        let b = pipelined_reader(&disarmed)
            .read_level(ds.var, level)
            .expect("disarmed");
        let c = serial_reader(&disarmed)
            .read_level(ds.var, level)
            .expect("disarmed serial");
        assert_eq!(a.data, b.data, "level {level}");
        assert_eq!(b.data, c.data, "level {level}, serial engine");
        assert!(!b.degraded, "nothing to degrade without faults");
        assert_eq!(b.achieved_level, b.level);
    }
    let snap = disarmed.metrics().snapshot();
    for name in [
        names::READ_RETRIES,
        names::READ_FAULTS_INJECTED,
        names::READ_CHECKSUM_FAILURES,
        names::READ_DEGRADED_RESTORES,
    ] {
        assert_eq!(snap.counter(name), 0, "{name} must stay zero");
    }
}

/// Acceptance: the second read of a cached `(var, level)` performs zero
/// tier I/O and returns the same values as the cold read.
#[test]
fn cached_repeat_read_moves_zero_bytes_and_matches() {
    let ds = xgc1_dataset_sized(16, 80, 23);
    let canopus = written(&ds, RelativeCodec::Fpc, 4);
    let reader = canopus.open("eq.bp").expect("open"); // cache enabled
    let bytes = canopus.metrics().counter(names::READ_BYTES_IO);

    let before = bytes.get();
    let cold = reader.read_level(ds.var, 0).expect("cold read");
    assert!(bytes.get() > before, "cold read moves tier bytes");

    let after_cold = bytes.get();
    let warm = reader.read_level(ds.var, 0).expect("warm read");
    assert_eq!(
        bytes.get(),
        after_cold,
        "cached repeat read must perform zero tier I/O"
    );
    assert_eq!(cold.data, warm.data, "cache returns the restored values");
    assert!(canopus.metrics().counter(names::READ_CACHE_HITS).get() >= 1);
}
