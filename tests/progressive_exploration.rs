//! Integration tests of the progressive-exploration workflow: storage-path
//! restoration must agree with the in-memory hierarchy, and analytics on
//! restored levels must agree with analytics on directly decimated data.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_analytics::blob::{BlobDetector, BlobParams};
use canopus_analytics::raster::Raster;
use canopus_data::xgc1_dataset_sized;
use canopus_refactor::levels::{LevelHierarchy, RefactorConfig};
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

const LEVELS: u32 = 4;

fn setup() -> (canopus_data::Dataset, Canopus) {
    let ds = xgc1_dataset_sized(20, 100, 21);
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(
        hierarchy,
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            // Raw codec: storage path must agree with the in-memory
            // hierarchy up to floating-point rounding only.
            codec: RelativeCodec::Raw,
            ..Default::default()
        },
    );
    canopus
        .write("prog.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (ds, canopus)
}

#[test]
fn storage_path_matches_in_memory_hierarchy_at_every_level() {
    let (ds, canopus) = setup();
    let h = LevelHierarchy::build(
        &ds.mesh,
        &ds.data,
        RefactorConfig {
            num_levels: LEVELS,
            ..Default::default()
        },
    );
    let reader = canopus.open("prog.bp").expect("open");
    for level in (0..LEVELS).rev() {
        let out = reader.read_level(ds.var, level).expect("read level");
        let expect = &h.levels[level as usize];
        assert_eq!(out.mesh, expect.mesh, "level {level} mesh differs");
        let max_err = out
            .data
            .iter()
            .zip(&expect.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "level {level}: err {max_err}");
    }
}

#[test]
fn progressive_reader_visits_levels_in_order_with_monotone_cost() {
    let (ds, canopus) = setup();
    let reader = canopus.open("prog.bp").expect("open");
    let mut prog = reader.progressive(ds.var).expect("progressive");
    let mut visited = vec![prog.level()];
    let mut cumulative = vec![prog.cumulative_timing().total()];
    while !prog.at_full_accuracy() {
        prog.refine().expect("refine");
        visited.push(prog.level());
        cumulative.push(prog.cumulative_timing().total());
    }
    assert_eq!(visited, vec![3, 2, 1, 0]);
    assert!(
        cumulative.windows(2).all(|w| w[1] > w[0]),
        "each refinement must add cost: {cumulative:?}"
    );
}

#[test]
fn blob_detection_matches_between_storage_and_direct_paths() {
    let (ds, canopus) = setup();
    let h = LevelHierarchy::build(
        &ds.mesh,
        &ds.data,
        RefactorConfig {
            num_levels: LEVELS,
            ..Default::default()
        },
    );
    let reader = canopus.open("prog.bp").expect("open");
    let bounds = ds.mesh.aabb();
    let raster0 = Raster::from_mesh(&ds.mesh, &ds.data, 192, 192, bounds);
    let (lo, hi) = raster0.value_range().expect("covered");
    let detector = BlobDetector::new(BlobParams::paper_config(10, 200, 50));

    for level in 0..LEVELS {
        let direct = &h.levels[level as usize];
        let stored = reader.read_level(ds.var, level).expect("read");
        let blobs_direct = detector.detect(
            &Raster::from_mesh(&direct.mesh, &direct.data, 192, 192, bounds).to_gray(lo, hi),
        );
        let blobs_stored = detector.detect(
            &Raster::from_mesh(&stored.mesh, &stored.data, 192, 192, bounds).to_gray(lo, hi),
        );
        assert_eq!(
            blobs_direct, blobs_stored,
            "level {level}: storage roundtrip changed analytics"
        );
    }
}

#[test]
fn base_read_touches_only_the_fast_tier() {
    let (ds, canopus) = setup();
    let hierarchy = canopus.hierarchy();
    // Reset read stats, then read just the base (after warming metadata
    // so geometry reads don't pollute the measurement).
    let reader = canopus.open("prog.bp").expect("open");
    reader.warm_metadata(ds.var).expect("warm");
    let lustre_reads_before = hierarchy.tier_stats(1).unwrap().reads;
    let _ = reader.read_base(ds.var).expect("base");
    let lustre_reads_after = hierarchy.tier_stats(1).unwrap().reads;
    assert_eq!(
        lustre_reads_before, lustre_reads_after,
        "a warm base read must not touch Lustre"
    );
}

#[test]
fn refine_until_with_moderate_threshold_stops_before_full() {
    let (ds, canopus) = setup();
    let reader = canopus.open("prog.bp").expect("open");

    // Find the actual delta RMS profile first.
    let mut probe = reader.progressive(ds.var).expect("probe");
    let mut rms_profile = Vec::new();
    while !probe.at_full_accuracy() {
        probe.refine().expect("refine");
        rms_profile.push(probe.last_delta_rms().expect("rms"));
    }
    // Pick a threshold between the first and the last RMS: retrieval must
    // stop strictly between base and full accuracy.
    let threshold = (rms_profile[0] + rms_profile[rms_profile.len() - 1]) / 2.0;
    let mut prog = reader.progressive(ds.var).expect("progressive");
    let steps = prog.refine_until(threshold).expect("refine_until");
    assert!(steps >= 1);
    if rms_profile.last().expect("non-empty") < &threshold {
        assert!(
            !prog.at_full_accuracy() || rms_profile.len() as u32 == 1,
            "should have stopped early (profile {rms_profile:?}, threshold {threshold})"
        );
    }
}
