//! Integration tests of placement across deep hierarchies and
//! capacity-driven bypass behavior (paper §III-D).

use canopus::{Canopus, CanopusConfig};
use canopus_data::genasis_dataset_sized;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::{ProductKind, StorageHierarchy, TierSpec};
use std::sync::Arc;

fn dataset() -> canopus_data::Dataset {
    genasis_dataset_sized(24, 72, 7)
}

#[test]
fn four_tier_placement_spreads_base_to_fastest() {
    let ds = dataset();
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::deep_four_tier(
        raw / 6,
        raw,
        raw * 8,
        raw * 64,
    ));
    let canopus = Canopus::new(
        Arc::clone(&hierarchy),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let report = canopus
        .write("deep.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");

    let tier_of = |kind: ProductKind| {
        report
            .products
            .iter()
            .find(|p| p.kind == kind)
            .map(|p| p.tier)
            .expect("product placed")
    };
    let base_tier = tier_of(ProductKind::Base { level: 3 });
    let d2 = tier_of(ProductKind::Delta {
        finer: 2,
        coarser: 3,
    });
    let d1 = tier_of(ProductKind::Delta {
        finer: 1,
        coarser: 2,
    });
    let d0 = tier_of(ProductKind::Delta {
        finer: 0,
        coarser: 1,
    });
    assert_eq!(base_tier, 0, "base goes to the fastest tier");
    assert!(base_tier <= d2 && d2 <= d1 && d1 <= d0, "monotone spread");
    assert!(d0 >= 2, "finest delta lands low in the pyramid");
}

#[test]
fn full_fast_tier_is_bypassed_not_fatal() {
    let ds = dataset();
    let raw = (ds.data.len() * 8) as u64;
    // Fast tier can hold only a few hundred bytes: everything bypasses.
    let hierarchy = Arc::new(StorageHierarchy::new(vec![
        TierSpec::new("tiny", 256, 1e9, 1e9, 0.0),
        TierSpec::new("big", raw * 64, 1e6, 1e6, 1e-3),
    ]));
    let canopus = Canopus::new(Arc::clone(&hierarchy), CanopusConfig::default());
    let report = canopus
        .write("b.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write bypasses");
    for p in &report.products {
        assert_eq!(p.tier, 1, "{} must bypass the tiny tier", p.key);
    }
    // And reading back still works.
    let reader = canopus.open("b.bp").expect("open");
    assert_eq!(
        reader.read_level(ds.var, 0).expect("read").data.len(),
        ds.data.len()
    );
}

#[test]
fn no_tier_ever_exceeds_capacity() {
    let ds = dataset();
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::deep_four_tier(
        raw / 8,
        raw / 2,
        raw * 4,
        raw * 64,
    ));
    let canopus = Canopus::new(Arc::clone(&hierarchy), CanopusConfig::default());
    canopus
        .write("cap.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    for t in 0..hierarchy.num_tiers() {
        let dev = hierarchy.tier_device(t).expect("tier");
        assert!(
            dev.used() <= dev.capacity(),
            "tier {t} over capacity: {} > {}",
            dev.used(),
            dev.capacity()
        );
    }
}

#[test]
fn placement_failure_reports_cleanly_when_everything_is_full() {
    let ds = dataset();
    let hierarchy = Arc::new(StorageHierarchy::new(vec![TierSpec::new(
        "microscopic",
        128,
        1e9,
        1e9,
        0.0,
    )]));
    let canopus = Canopus::new(hierarchy, CanopusConfig::default());
    let err = canopus
        .write("fail.bp", ds.var, &ds.mesh, &ds.data)
        .expect_err("cannot fit");
    let msg = format!("{err}");
    assert!(
        msg.contains("placement") || msg.contains("room") || msg.contains("Placement"),
        "unexpected error: {msg}"
    );
}

#[test]
fn simulated_clock_accumulates_over_campaign() {
    let ds = dataset();
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 256));
    let canopus = Canopus::new(Arc::clone(&hierarchy), CanopusConfig::default());
    // Write several "timesteps" as separate files; the clock must grow
    // with each.
    let mut last = 0.0;
    for step in 0..3 {
        canopus
            .write(&format!("step{step}.bp"), ds.var, &ds.mesh, &ds.data)
            .expect("write timestep");
        let now = hierarchy.clock().now().seconds();
        assert!(now > last, "clock must advance per timestep");
        last = now;
    }
    // Reads advance it further.
    let reader = canopus.open("step1.bp").expect("open");
    reader.read_level(ds.var, 0).expect("read");
    assert!(hierarchy.clock().now().seconds() > last);
}

#[test]
fn tier_stats_reflect_read_traffic_distribution() {
    let ds = dataset();
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(Arc::clone(&hierarchy), CanopusConfig::default());
    canopus
        .write("t.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    let reader = canopus.open("t.bp").expect("open");
    reader.warm_metadata(ds.var).expect("warm");

    let before = (
        hierarchy.tier_stats(0).unwrap().bytes_read,
        hierarchy.tier_stats(1).unwrap().bytes_read,
    );
    reader.read_level(ds.var, 0).expect("full restore");
    let after = (
        hierarchy.tier_stats(0).unwrap().bytes_read,
        hierarchy.tier_stats(1).unwrap().bytes_read,
    );
    let fast_read = after.0 - before.0;
    let slow_read = after.1 - before.1;
    assert!(fast_read > 0, "base comes from the fast tier");
    assert!(slow_read > 0, "deltas come from the slow tier");
    assert!(
        slow_read > fast_read,
        "deltas carry more bytes than the base ({slow_read} vs {fast_read})"
    );
}
