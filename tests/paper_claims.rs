//! The paper's headline claims, asserted end-to-end at reduced scale.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator,
//! not Titan); these tests pin the *shapes*: who wins, in which
//! direction, and that the crossovers exist.

use canopus_bench::ablation;
use canopus_bench::blobs;
use canopus_bench::endtoend;
use canopus_bench::fig5;
use canopus_bench::fig6;
use canopus_data::{cfd_dataset_sized, genasis_dataset_sized, xgc1_dataset_sized};
use canopus_refactor::Estimator;

/// Claim (Fig. 5 / Motivation 2): storing base + deltas compresses
/// better than storing all levels directly.
#[test]
fn claim_delta_preconditioning_wins() {
    let ds = genasis_dataset_sized(40, 120, 42);
    let rows = fig5::compression_comparison(&ds, 4, 1e-3, Estimator::Mean);
    for row in &rows[1..] {
        assert!(
            row.canopus_normalized < row.direct_normalized,
            "N={}: {row:?}",
            row.total_levels
        );
    }
    // And the advantage grows with more levels.
    assert!(rows[3].improvement() > rows[1].improvement());
}

/// Claim (Fig. 6b): as compute gets cheaper relative to storage, the
/// refactoring overhead fades and I/O dominates the write.
#[test]
fn claim_refactoring_cost_shrinks_with_compute() {
    let ds = xgc1_dataset_sized(16, 80, 42);
    let rows = fig6::write_breakdown(&ds);
    let compute_frac = |r: &fig6::WriteBreakdownRow| r.decimation_frac + r.delta_compress_frac;
    assert!(compute_frac(&rows[0]) > compute_frac(&rows[1]));
    assert!(compute_frac(&rows[1]) > compute_frac(&rows[2]));
}

/// Claim (§IV-D / Fig. 8): "most blobs in the full accuracy data can
/// still be detected using a moderately reduced accuracy" — high overlap
/// at moderate decimation, information loss at extreme decimation.
#[test]
fn claim_blobs_survive_moderate_decimation() {
    let ds = xgc1_dataset_sized(24, 120, 42);
    let rows = blobs::blob_quality(&ds, 4);
    let config1: Vec<_> = rows.iter().filter(|r| r.config == "Config1").collect();
    // Full accuracy detects blobs at all.
    assert!(config1[0].metrics.count >= 4);
    // Moderate decimation (ratios 2, 4) keeps high overlap.
    for r in &config1[1..3] {
        assert!(
            r.overlap >= 0.6,
            "ratio {}: overlap {}",
            r.ratio_label,
            r.overlap
        );
    }
}

/// Claim (Fig. 8b): the averaging effect of edge collapsing makes
/// surviving blobs *expand* before they disappear.
#[test]
fn claim_blobs_expand_under_decimation() {
    let ds = xgc1_dataset_sized(24, 120, 42);
    let rows = blobs::blob_quality(&ds, 4);
    let config1: Vec<_> = rows.iter().filter(|r| r.config == "Config1").collect();
    let d0 = config1[0].metrics.avg_diameter;
    let expanded = config1[1..]
        .iter()
        .filter(|r| r.metrics.count > 0)
        .any(|r| r.metrics.avg_diameter > d0);
    assert!(
        expanded,
        "some decimated level should show larger average blobs: {:?}",
        config1
            .iter()
            .map(|r| (r.ratio_label.clone(), r.metrics.avg_diameter))
            .collect::<Vec<_>>()
    );
}

/// Claim (Fig. 9a): end-to-end exploratory analysis accelerates as
/// accuracy is traded for speed; the paper reports up to an order of
/// magnitude. At reduced scale we require a clear monotone win in the
/// pipeline I/O+decompress+restore cost.
#[test]
fn claim_analysis_accelerates_with_reduced_accuracy() {
    let ds = xgc1_dataset_sized(16, 80, 42);
    let rows = endtoend::end_to_end(&ds, 4, false);
    let pipeline = |r: &endtoend::EndToEndRow| r.io_secs + r.decompress_secs + r.restore_secs;
    let baseline = pipeline(&rows[0]);
    let deepest = pipeline(rows.last().expect("rows"));
    assert!(
        deepest < baseline / 4.0,
        "deep base should cut pipeline cost hard: {deepest} vs {baseline}"
    );
    // Monotone through the ratios.
    for pair in rows[1..].windows(2) {
        assert!(pipeline(&pair[1]) <= pipeline(&pair[0]) * 1.05);
    }
}

/// Claim (Fig. 9b): restoring *full* accuracy through Canopus still beats
/// reading raw full accuracy from the slow tier ("reduce the data
/// analysis time by up to 50%").
#[test]
fn claim_full_restore_beats_raw_read() {
    let ds = cfd_dataset_sized(45, 36, 42);
    let rows = endtoend::end_to_end(&ds, 3, false);
    let baseline = rows[0].full_restore_secs;
    let best = rows[1..]
        .iter()
        .map(|r| r.full_restore_secs)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best < baseline * 0.7,
        "best Canopus restore {best} should be >30% under baseline {baseline}"
    );
}

/// Claim (§III-C2): deltas are smoother than the levels they encode.
#[test]
fn claim_deltas_are_smoother() {
    for ds in [
        xgc1_dataset_sized(24, 120, 7),
        genasis_dataset_sized(30, 90, 7),
        cfd_dataset_sized(40, 32, 7),
    ] {
        for row in ablation::smoothness(&ds, 3) {
            assert!(
                row.delta_std < row.level_std,
                "{} level {}: delta std {} !< level std {}",
                ds.name,
                row.level,
                row.delta_std,
                row.level_std
            );
        }
    }
}

/// Claim (§III-E2): the stored mapping makes restoration point location
/// far cheaper than a brute-force search.
#[test]
fn claim_stored_mapping_accelerates_restoration() {
    let ds = xgc1_dataset_sized(16, 80, 42);
    let row = ablation::mapping_ablation(&ds);
    assert!(row.speedup > 2.0, "speedup only {:.1}x", row.speedup);
}

/// Claim (Fig. 9): on the Titan-like testbed, data movement — not
/// decompression or restoration — dominates the full-restore pipeline.
/// The paper's panel (b) bars are almost entirely retrieval time at
/// every decimation ratio; here the shared metrics registry provides the
/// evidence: per-row snapshots must show simulated I/O as the largest
/// read phase.
#[test]
fn claim_io_dominates_full_restore() {
    let ds = xgc1_dataset_sized(16, 80, 42);
    let rows = endtoend::end_to_end(&ds, 3, false);

    // The raw baseline is essentially pure I/O on the read path (the
    // raw-codec decode contributes only a sliver of wall time).
    let baseline_frac = rows[0].metrics.read_io_fraction();
    assert!(
        baseline_frac > 0.99,
        "baseline read is almost pure I/O, got fraction {baseline_frac}"
    );

    for row in &rows[1..] {
        let snap = &row.metrics;
        let breakdown = snap.read_breakdown();
        let (top_phase, top_frac) = breakdown
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty breakdown")
            .clone();
        assert_eq!(
            top_phase,
            canopus_obs::names::READ_IO,
            "ratio {}: I/O must be the top read phase, got {breakdown:?}",
            row.ratio_label
        );
        assert!(
            top_frac > 0.5,
            "ratio {}: I/O fraction {top_frac} should dominate ({breakdown:?})",
            row.ratio_label
        );
        // And the snapshot agrees with the row's own phase timing: the
        // registry saw at least the panel-(a) simulated I/O seconds.
        assert!(
            snap.timer(canopus_obs::names::READ_IO).sim_secs >= row.io_secs * 0.99,
            "ratio {}: registry I/O {}s < row I/O {}s",
            row.ratio_label,
            snap.timer(canopus_obs::names::READ_IO).sim_secs,
            row.io_secs
        );
    }
}
