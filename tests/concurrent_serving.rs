//! Concurrent-serving equivalence: the shared service — many client
//! threads over one engine, a bounded queue, a worker pool and the
//! shared decoded-level cache — must be observationally identical to a
//! serial reader answering the same requests one at a time. Concurrency
//! changes *when* work happens and *which* cache entry answers, never
//! *what* a request returns. A reserved quick lane additionally pins
//! the scheduling contract: a `QuickLook` admitted while deep restores
//! are running completes without waiting for them.

use canopus::config::RelativeCodec;
use canopus::read::CanopusReader;
use canopus::{Canopus, CanopusConfig, CanopusService, Priority, ServeRequest, ServeResponse};
use canopus_data::{xgc1_dataset_sized, Dataset};
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_obs::names;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

const FILE: &str = "serve.bp";
const LEVELS: u32 = 4;

fn engine(ds: &Dataset, workers: u32) -> Canopus {
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            codec: RelativeCodec::Raw,
            serve_workers: workers,
            ..Default::default()
        },
    );
    canopus
        .write(FILE, ds.var, &ds.mesh, &ds.data)
        .expect("write");
    canopus
}

/// The reference engine: pre-pipeline serial walk, no cache.
fn serial_reader(canopus: &Canopus) -> CanopusReader {
    canopus
        .open(FILE)
        .expect("open")
        .with_pipeline_depth(0)
        .with_level_cache(0)
}

/// One of four quadrant windows of the dataset's bounding box.
fn quadrant(ds: &Dataset, which: u64) -> Aabb {
    let bb = ds.mesh.aabb();
    let cx = (bb.min.x + bb.max.x) / 2.0;
    let cy = (bb.min.y + bb.max.y) / 2.0;
    let (x0, y0) = match which % 4 {
        0 => (bb.min.x, bb.min.y),
        1 => (cx, bb.min.y),
        2 => (bb.min.x, cy),
        _ => (cx, cy),
    };
    Aabb::from_points([
        Point2::new(x0, y0),
        Point2::new(x0 + (cx - bb.min.x), y0 + (cy - bb.min.y)),
    ])
}

/// A fixed mixed request set covering every request kind, every level
/// and every region quadrant.
fn mixed_requests(ds: &Dataset) -> Vec<ServeRequest> {
    let mut requests = Vec::new();
    for round in 0..3u64 {
        requests.push(ServeRequest::Base {
            file: FILE.into(),
            var: ds.var.to_string(),
        });
        for level in 0..LEVELS {
            requests.push(ServeRequest::Level {
                file: FILE.into(),
                var: ds.var.to_string(),
                level,
            });
        }
        requests.push(ServeRequest::Region {
            file: FILE.into(),
            var: ds.var.to_string(),
            region: quadrant(ds, round),
        });
        requests.push(ServeRequest::Region {
            file: FILE.into(),
            var: ds.var.to_string(),
            region: quadrant(ds, round + 3),
        });
    }
    requests
}

/// What the serial oracle answers for `request`, on a fresh reader so
/// no cache state leaks between oracle calls.
fn oracle(canopus: &Canopus, request: &ServeRequest) -> ServeOracle {
    let reader = serial_reader(canopus);
    match request {
        ServeRequest::Base { var, .. } => {
            let out = reader.read_base(var).expect("oracle base");
            ServeOracle {
                bits: out.data.iter().map(|v| v.to_bits()).collect(),
                achieved_level: out.achieved_level,
                degraded: out.degraded,
                chunks_read: None,
            }
        }
        ServeRequest::Level { var, level, .. } => {
            let out = reader.read_level(var, *level).expect("oracle level");
            ServeOracle {
                bits: out.data.iter().map(|v| v.to_bits()).collect(),
                achieved_level: out.achieved_level,
                degraded: out.degraded,
                chunks_read: None,
            }
        }
        ServeRequest::Region { var, region, .. } => {
            let base = reader.read_base(var).expect("oracle region base");
            let (roi, stats) = reader
                .refine_region(var, &base, *region)
                .expect("oracle refine");
            ServeOracle {
                bits: roi.data.iter().map(|v| v.to_bits()).collect(),
                achieved_level: roi.achieved_level,
                degraded: roi.degraded,
                chunks_read: Some((stats.chunks_read, stats.chunks_total, stats.exact_vertices)),
            }
        }
    }
}

struct ServeOracle {
    bits: Vec<u64>,
    achieved_level: u32,
    degraded: bool,
    chunks_read: Option<(usize, usize, usize)>,
}

fn assert_matches_oracle(expected: &ServeOracle, got: &ServeResponse, what: &str) {
    let got_bits: Vec<u64> = got.outcome.data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(expected.bits, got_bits, "{what}: data bytes diverge");
    assert_eq!(
        expected.achieved_level, got.outcome.achieved_level,
        "{what}: achieved_level diverges"
    );
    assert_eq!(
        expected.degraded, got.outcome.degraded,
        "{what}: degraded flag diverges"
    );
    match (&expected.chunks_read, &got.region_stats) {
        (None, None) => {}
        (Some((reads, total, exact)), Some(stats)) => {
            assert_eq!(*reads, stats.chunks_read, "{what}: chunks_read diverges");
            assert_eq!(*total, stats.chunks_total, "{what}: chunks_total diverges");
            assert_eq!(
                *exact, stats.exact_vertices,
                "{what}: exact_vertices diverges"
            );
        }
        _ => panic!("{what}: region stats presence diverges"),
    }
}

/// N client threads hammering the service with a mixed workload must
/// each get byte-identical answers to the serial oracle — for every
/// request kind, on a lossless codec, while the shared decoded-level
/// cache is live and contended.
#[test]
fn concurrent_mixed_workload_is_byte_identical_to_serial_oracle() {
    let ds = xgc1_dataset_sized(16, 80, 5);
    let canopus = Arc::new(engine(&ds, 4));
    let requests = mixed_requests(&ds);
    let oracles: Vec<ServeOracle> = requests.iter().map(|r| oracle(&canopus, r)).collect();

    let service = CanopusService::start(Arc::clone(&canopus));
    let clients = 4usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = &service;
                let requests = &requests;
                let oracles = &oracles;
                scope.spawn(move || {
                    // Each client walks the request set from a different
                    // offset, so at any instant different clients contend
                    // on different cache entries.
                    for k in 0..requests.len() {
                        let i = (k + c * 3) % requests.len();
                        let response = service
                            .submit(requests[i].clone())
                            .expect("submit")
                            .wait()
                            .expect("serve");
                        assert_matches_oracle(
                            &oracles[i],
                            &response,
                            &format!("client {c} request {i}"),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
}

/// Cache-hit accounting stays symmetric under contention: with the
/// cache enabled, every base/level read probes exactly once, so
/// `hits + misses` equals the number of probing calls no matter how
/// the worker pool interleaves them. (Region refinement never probes —
/// only its embedded base read does.)
#[test]
fn cache_accounting_is_symmetric_under_contention() {
    let ds = xgc1_dataset_sized(12, 60, 9);
    let canopus = Arc::new(engine(&ds, 4));
    let requests = mixed_requests(&ds);
    let probing_calls = requests.len() as u64; // one probe per request
    let clients = 4u64;

    let service = CanopusService::start(Arc::clone(&canopus));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let service = &service;
                let requests = &requests;
                scope.spawn(move || {
                    for r in requests.iter() {
                        service
                            .submit(r.clone())
                            .expect("submit")
                            .wait()
                            .expect("serve");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let obs = canopus.metrics();
    let hits = obs.counter(names::READ_CACHE_HITS).get();
    let misses = obs.counter(names::READ_CACHE_MISSES).get();
    assert_eq!(
        hits + misses,
        probing_calls * clients,
        "every probing call must record exactly one hit or miss (hits {hits}, misses {misses})"
    );
    assert!(misses >= 1, "cold start must miss at least once");
    assert!(
        hits > misses,
        "a repeated workload over a shared cache must mostly hit (hits {hits}, misses {misses})"
    );
}

/// The reserved quick lane, deterministically: with two workers, worker
/// 0 only ever runs `QuickLook` jobs. Fill the pool with full restores
/// — only worker 1 may take them, one at a time — then admit a quick
/// look. It must complete while full restores are still pending, i.e.
/// without waiting for the backlog.
#[test]
fn quick_look_admitted_during_full_restores_does_not_wait_for_them() {
    let ds = xgc1_dataset_sized(24, 120, 3);
    let canopus = Arc::new(engine(&ds, 2));
    let service = CanopusService::start(Arc::clone(&canopus));
    assert_eq!(service.workers(), 2);

    let fulls: Vec<_> = (0..6)
        .map(|_| {
            service
                .submit(ServeRequest::Level {
                    file: FILE.into(),
                    var: ds.var.to_string(),
                    level: 0,
                })
                .expect("submit full")
        })
        .collect();

    // Wait until the general worker has actually picked up a full
    // restore, so the quick look genuinely races running deep work.
    let obs = Arc::clone(service.metrics());
    let dequeued_full = obs.counter(&names::serve_dequeued("full"));
    while dequeued_full.get() == 0 {
        std::thread::yield_now();
    }

    let quick = service
        .submit(ServeRequest::Base {
            file: FILE.into(),
            var: ds.var.to_string(),
        })
        .expect("submit quick")
        .wait()
        .expect("quick look");
    assert_eq!(quick.priority, Priority::QuickLook);

    // At the moment the quick look completed, the full backlog must not
    // have drained: one worker serves six restores sequentially, and
    // the quick lane never queues behind it.
    let completed_full = obs.counter(&names::serve_completed("full")).get();
    assert!(
        completed_full < 6,
        "quick look waited for the full-restore backlog ({completed_full}/6 already done)"
    );

    for t in fulls {
        let r = t.wait().expect("full restore");
        assert_eq!(r.priority, Priority::FullAccuracy);
        assert_eq!(r.outcome.achieved_level, 0);
    }
}
