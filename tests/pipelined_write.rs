//! Pipelined-write equivalence: the level-streaming engine (decimation
//! overlapped with mapping/delta/compression workers and per-tier
//! write-behind queues) must leave the storage hierarchy in a state
//! byte-identical to the serial barrier engine it replaced — every data
//! block, every metadata block and the manifest itself, on the same
//! tiers — for every codec, level count and chunking. The products a
//! pipelined write places must also round-trip through the (default,
//! pipelined) restore engine.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig, FaultPlan, RetryPolicy};
use canopus_data::xgc1_dataset_sized;
use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_mesh::TriMesh;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn written(
    mesh: &TriMesh,
    data: &[f64],
    codec: RelativeCodec,
    levels: u32,
    chunks: u32,
    write_pipeline_depth: u32,
    decimation_parts: u32,
) -> Canopus {
    let raw = (data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: levels,
                ..Default::default()
            },
            codec,
            delta_chunks: chunks,
            write_pipeline_depth,
            decimation_parts,
            ..Default::default()
        },
    );
    canopus.write("eq.bp", "v", mesh, data).expect("write");
    canopus
}

/// Full dump of the hierarchy: key → (tier index, stored bytes). Reads
/// the devices directly so the dump itself moves no simulated I/O.
fn tier_contents(c: &Canopus) -> BTreeMap<String, (usize, Vec<u8>)> {
    let h = c.hierarchy();
    let mut out = BTreeMap::new();
    for tier in 0..h.num_tiers() {
        let dev = h.tier_device(tier).expect("tier device");
        for key in dev.keys() {
            let bytes = dev.get(&key).expect("stored block").to_vec();
            let prev = out.insert(key.clone(), (tier, bytes));
            assert!(prev.is_none(), "{key} stored on two tiers");
        }
    }
    out
}

fn small_case() -> (TriMesh, Vec<f64>) {
    let ds = xgc1_dataset_sized(14, 70, 11);
    (ds.mesh, ds.data)
}

/// The headline contract: for every codec × level count × chunking, the
/// two engines place identical bytes on identical tiers — manifest
/// (`.bpmeta`) included.
#[test]
fn engines_are_byte_identical_across_codecs_levels_and_chunking() {
    let (mesh, data) = small_case();
    let codecs = [
        RelativeCodec::ZfpLike {
            rel_tolerance: 1e-5,
        },
        RelativeCodec::SzLike {
            rel_error_bound: 1e-5,
        },
        RelativeCodec::Fpc,
        RelativeCodec::Raw,
    ];
    for codec in codecs {
        for levels in 1..=5u32 {
            for chunks in [1u32, 4] {
                let serial = written(&mesh, &data, codec, levels, chunks, 0, 1);
                let pipelined = written(&mesh, &data, codec, levels, chunks, 4, 1);
                let a = tier_contents(&serial);
                let b = tier_contents(&pipelined);
                assert!(
                    a.contains_key("eq.bp/.bpmeta"),
                    "manifest missing ({codec:?}, {levels} levels, {chunks} chunks)"
                );
                assert_eq!(
                    a, b,
                    "tier contents diverge ({codec:?}, {levels} levels, {chunks} chunks)"
                );
            }
        }
    }
}

/// The parallel decimation kernel slots into both engines identically:
/// with `decimation_parts > 1` the two engines still agree byte-for-byte
/// (they share the kernel), and repeat runs are deterministic.
#[test]
fn parallel_decimation_kernel_keeps_engines_identical_and_deterministic() {
    let (mesh, data) = small_case();
    let codec = RelativeCodec::Fpc;
    for parts in [2u32, 3] {
        let serial = written(&mesh, &data, codec, 4, 1, 0, parts);
        let pipelined = written(&mesh, &data, codec, 4, 1, 4, parts);
        let again = written(&mesh, &data, codec, 4, 1, 4, parts);
        assert_eq!(
            tier_contents(&serial),
            tier_contents(&pipelined),
            "engines diverge at decimation_parts = {parts}"
        );
        assert_eq!(
            tier_contents(&pipelined),
            tier_contents(&again),
            "repeat run not deterministic at decimation_parts = {parts}"
        );
    }
}

/// Reports agree too: same product keys, tiers and stored sizes, and
/// simulated I/O time within float noise.
#[test]
fn write_reports_agree_between_engines() {
    let (mesh, data) = small_case();
    let raw = (data.len() * 8) as u64;
    let mk = |depth: u32| {
        Canopus::new(
            Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
            CanopusConfig {
                refactor: RefactorConfig {
                    num_levels: 3,
                    ..Default::default()
                },
                delta_chunks: 4,
                write_pipeline_depth: depth,
                ..Default::default()
            },
        )
    };
    let a = mk(0);
    let b = mk(4);
    let ra = a.write("eq.bp", "v", &mesh, &data).expect("serial");
    let rb = b.write("eq.bp", "v", &mesh, &data).expect("pipelined");
    let summarize = |r: &canopus::WriteReport| {
        let mut v: Vec<(String, usize, u64, u64)> = r
            .products
            .iter()
            .map(|p| (p.key.clone(), p.tier, p.stored_bytes, p.raw_bytes))
            .collect();
        v.sort();
        v
    };
    assert_eq!(summarize(&ra), summarize(&rb));
    assert!((ra.io_time.seconds() - rb.io_time.seconds()).abs() < 1e-12);
    assert_eq!(ra.stored_data_bytes(), rb.stored_data_bytes());
    assert_eq!(ra.original_bytes(), rb.original_bytes());
}

/// A pipelined write round-trips through the pipelined restore engine:
/// with a lossless codec only restoration's `(a - b) + b` rounding
/// remains at L0, and every coarser level is readable.
#[test]
fn pipelined_write_roundtrips_through_pipelined_reader() {
    let (mesh, data) = small_case();
    let range = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - data.iter().cloned().fold(f64::INFINITY, f64::min);
    let bound = 1e-12 * range.max(1.0);
    for chunks in [1u32, 4] {
        let canopus = written(&mesh, &data, RelativeCodec::Fpc, 4, chunks, 4, 1);
        let reader = canopus.open("eq.bp").expect("open");
        let out = reader.read_level("v", 0).expect("restore L0");
        let err = out
            .data
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err <= bound, "L0 err {err} > {bound} (chunks {chunks})");
        for level in 1..4u32 {
            let coarse = reader.read_level("v", level).expect("coarser level");
            assert!(coarse.data.len() < data.len());
        }
    }
}

/// An explicitly disarmed fault plan — and any retry budget — is
/// invisible to the write path: tier contents, manifest included, stay
/// byte-identical to the default configuration's, through both engines.
#[test]
fn disarmed_fault_plan_leaves_tier_contents_byte_identical() {
    let (mesh, data) = small_case();
    let raw = (data.len() * 8) as u64;
    for depth in [0u32, 4] {
        let baseline = written(&mesh, &data, RelativeCodec::Fpc, 4, 1, depth, 1);
        let disarmed = Canopus::new(
            Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
            CanopusConfig {
                refactor: RefactorConfig {
                    num_levels: 4,
                    ..Default::default()
                },
                codec: RelativeCodec::Fpc,
                write_pipeline_depth: depth,
                fault: FaultPlan::none(),
                retry: RetryPolicy {
                    max_attempts: 9,
                    ..RetryPolicy::new()
                },
                ..Default::default()
            },
        );
        disarmed.write("eq.bp", "v", &mesh, &data).expect("write");
        assert_eq!(
            tier_contents(&baseline),
            tier_contents(&disarmed),
            "disarmed fault plan must not change placed bytes (depth {depth})"
        );
    }
}

fn arb_case() -> impl Strategy<Value = (usize, usize, u64, u32, u32, u32)> {
    (
        5usize..11,
        5usize..11,
        0u64..500,
        1u32..6, // write_pipeline_depth
        1u32..4, // decimation_parts
        1u32..5, // num_levels
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the mesh, pipeline depth, kernel partitioning and level
    /// count, the streaming engine's hierarchy is byte-identical to the
    /// serial engine's.
    #[test]
    fn streaming_write_equivalence((nx, ny, seed, depth, parts, levels) in arb_case()) {
        let bb = Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
        let mesh = jitter_interior(&rectangle_mesh(nx, ny, bb), 0.2, seed);
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| (p.x * 9.0).sin() * (p.y * 5.0).cos() + 0.3 * p.x)
            .collect();
        let codec = RelativeCodec::ZfpLike { rel_tolerance: 1e-5 };
        let serial = written(&mesh, &data, codec, levels, 1, 0, parts);
        let pipelined = written(&mesh, &data, codec, levels, 1, depth, parts);
        prop_assert_eq!(tier_contents(&serial), tier_contents(&pipelined));
    }
}
