//! Live telemetry plane, end to end: a real `CanopusService` behind the
//! embedded scrape endpoint. These tests pin the route surface on an
//! ephemeral port (`/metrics`, `/metrics.json`, `/healthz`, `/slo`,
//! `/decisions`), the exactness of the SLO accounting under forced
//! deadlines, the zero-overhead contract when the plane is disabled
//! (mirroring `tests/observability.rs`'s disabled-sink pattern), the
//! rolling window's bracketing of served work, and the determinism of
//! the tiering decision audit exposed over HTTP.

use bytes::Bytes;
use canopus::config::RelativeCodec;
use canopus::telemetry::http_get;
use canopus::{
    Canopus, CanopusConfig, CanopusService, Priority, ServeOptions, ServeRequest, TelemetryConfig,
    TelemetryServer, TierMigrator, TieringPolicy,
};
use canopus_data::{xgc1_dataset_sized, Dataset};
use canopus_obs::{json, names, Registry, RollingWindow, WindowConfig};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::{StorageHierarchy, TierSpec};
use std::sync::Arc;
use std::time::Duration;

const FILE: &str = "telemetry.bp";
const TIMEOUT: Duration = Duration::from_secs(5);

fn engine(ds: &Dataset, adaptive: bool) -> Canopus {
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: 3,
                ..Default::default()
            },
            codec: RelativeCodec::Raw,
            serve_workers: 2,
            adaptive_tiering: adaptive,
            tiering: TieringPolicy {
                interval_ms: 1,
                ..TieringPolicy::new()
            },
            ..Default::default()
        },
    );
    canopus
        .write(FILE, ds.var, &ds.mesh, &ds.data)
        .expect("write");
    canopus
}

fn quick() -> ServeRequest {
    ServeRequest::Base {
        file: FILE.into(),
        var: "dpot".into(),
    }
}

fn get(server: &TelemetryServer, path: &str) -> (u16, String) {
    http_get(server.addr(), path, TIMEOUT).expect("scrape")
}

fn get_json(server: &TelemetryServer, path: &str) -> json::Value {
    let (status, body) = get(server, path);
    assert_eq!(status, 200, "{path} must answer 200, body: {body}");
    json::parse(&body).unwrap_or_else(|e| panic!("{path} must be JSON ({e:?}): {body}"))
}

/// Every route answers on an ephemeral port while a real service with
/// an adaptive-tier maintainer runs behind it, and the payloads agree
/// with the service's own counters.
#[test]
fn endpoint_serves_full_route_surface_against_live_service() {
    let ds = xgc1_dataset_sized(16, 80, 5);
    let canopus = Arc::new(engine(&ds, true));
    let service = CanopusService::start(Arc::clone(&canopus));
    service.enable_live_telemetry();
    let mut server = TelemetryServer::start(
        "127.0.0.1:0",
        service.telemetry_sources(),
        TelemetryConfig::default(),
    )
    .expect("bind telemetry endpoint");

    let quick_n = 6u64;
    for _ in 0..quick_n {
        service
            .submit(quick())
            .expect("submit")
            .wait()
            .expect("serve");
    }
    service
        .submit(ServeRequest::Level {
            file: FILE.into(),
            var: ds.var.to_string(),
            level: 0,
        })
        .expect("submit")
        .wait()
        .expect("serve");

    // `/healthz`: liveness derived from gauges, shaped by the pool.
    let health = get_json(&server, "/healthz");
    assert_eq!(
        health.get("status").and_then(json::Value::as_str),
        Some("ok")
    );
    assert_eq!(
        health.get("workers_expected").and_then(json::Value::as_i64),
        Some(2)
    );
    assert_eq!(
        health.get("tier_maintainer").and_then(json::Value::as_bool),
        Some(true)
    );
    assert_eq!(
        health.get("queue_depth").and_then(json::Value::as_i64),
        Some(0),
        "queue must be drained once every ticket resolved"
    );

    // `/metrics`: Prometheus text including the plane's own scrape
    // counter (this is the second GET, so it has already counted one).
    let (status, prom) = get(&server, "/metrics");
    assert_eq!(status, 200);
    assert!(prom.contains("canopus_serve_requests"), "{prom}");
    assert!(prom.contains("canopus_telemetry_scrapes"), "{prom}");

    // `/metrics.json`: the full snapshot, parseable.
    let snap_doc = get_json(&server, "/metrics.json");
    assert!(snap_doc.as_obj().is_some());

    // `/slo`: the quiesced cumulative ledger is exact.
    let slo = get_json(&server, "/slo");
    let budget = slo.get("deadline_budget_s").expect("budget block");
    assert_eq!(
        budget.get("quick").and_then(json::Value::as_f64),
        Some(0.05)
    );
    assert_eq!(budget.get("full").and_then(json::Value::as_f64), Some(30.0));
    for (class, expect_completed) in [("quick", quick_n), ("full", 1)] {
        let c = slo
            .get("cumulative")
            .and_then(|v| v.get(class))
            .unwrap_or_else(|| panic!("cumulative.{class} missing"));
        let completed = c.get("completed").and_then(json::Value::as_u64).unwrap();
        let hits = c
            .get("deadline_hits")
            .and_then(json::Value::as_u64)
            .unwrap();
        let misses = c
            .get("deadline_misses")
            .and_then(json::Value::as_u64)
            .unwrap();
        assert_eq!(completed, expect_completed, "{class}");
        assert_eq!(hits + misses, completed, "{class}: every completion judged");
        let ppm = c
            .get("attainment_ppm")
            .and_then(json::Value::as_i64)
            .unwrap();
        assert!((0..=1_000_000).contains(&ppm), "{class}: ppm {ppm}");
    }

    // `/decisions`: the audit ring is exposed and internally consistent
    // with the migrator the service actually runs.
    let dec = get_json(&server, "/decisions");
    assert_eq!(
        dec.get("available").and_then(json::Value::as_bool),
        Some(true)
    );
    let ring = service
        .tier_migrator()
        .expect("adaptive on")
        .decision_ring();
    let listed = dec.get("decisions").and_then(json::Value::as_arr).unwrap();
    assert!(listed.len() <= ring.capacity(), "ring stays bounded");
    let recorded = dec.get("recorded").and_then(json::Value::as_u64).unwrap();
    let evicted = dec.get("evicted").and_then(json::Value::as_u64).unwrap();
    assert!(
        recorded >= listed.len() as u64
            && recorded <= listed.len() as u64 + evicted + ring.len() as u64,
        "recorded ({recorded}) must reconcile with retained + evicted"
    );
    for d in listed {
        let action = d.get("action").and_then(json::Value::as_str).unwrap();
        assert!(
            ["promote", "demote", "swap_demote", "skip"].contains(&action),
            "unknown action {action}"
        );
        assert!(
            !d.get("reason")
                .and_then(json::Value::as_str)
                .unwrap()
                .is_empty(),
            "every decision carries a reason"
        );
    }

    // Unknown routes 404 with the route list; the scrape counter saw
    // every GET above (6 so far including this one).
    let (status, body) = get(&server, "/nope");
    assert_eq!(status, 404);
    assert!(body.contains("/metrics"), "{body}");
    assert_eq!(server.scrapes(), 6);

    // After stop, the port no longer answers.
    let addr = server.addr();
    server.stop();
    assert!(http_get(addr, "/healthz", Duration::from_millis(500)).is_err());
}

/// Forced deadlines make the ledger exact: a zero budget can never be
/// met (completion is not strictly before admission), a one-hour budget
/// always is. The derived attainment gauge follows when the live plane
/// is on.
#[test]
fn slo_accounting_is_exact_under_forced_deadlines() {
    let ds = xgc1_dataset_sized(12, 60, 9);
    let canopus = Arc::new(engine(&ds, false));
    let service = CanopusService::start(Arc::clone(&canopus));
    service.enable_live_telemetry();

    let submit = |deadline: Duration, n: u64| {
        for _ in 0..n {
            service
                .submit_with(
                    quick(),
                    ServeOptions {
                        priority: Priority::QuickLook,
                        deadline: Some(deadline),
                    },
                )
                .expect("submit")
                .wait()
                .expect("serve");
        }
    };
    submit(Duration::ZERO, 3); // unmeetable: 3 misses
    submit(Duration::from_secs(3600), 9); // generous: 9 hits

    let snap = service.metrics().snapshot();
    assert_eq!(snap.counter(&names::serve_deadline_miss("quick")), 3);
    assert_eq!(snap.counter(&names::serve_deadline_hit("quick")), 9);
    assert_eq!(snap.counter(&names::serve_completed("quick")), 12);
    // attainment = 9 / 12 = 750_000 ppm, recomputed at last completion.
    assert_eq!(snap.gauge(&names::serve_attainment_ppm("quick")), 750_000);
}

/// With the live plane left off (the default), deadline bookkeeping
/// still runs — the counters are the ground truth — but the derived
/// attainment gauge is never touched: the hot path pays exactly the one
/// gating load. Mirrors the disabled-sink zero-overhead pattern.
#[test]
fn disabled_live_plane_never_touches_derived_gauges() {
    let ds = xgc1_dataset_sized(12, 60, 9);
    let canopus = Arc::new(engine(&ds, false));
    let service = CanopusService::start(Arc::clone(&canopus));
    assert!(!service.live_telemetry_enabled());

    for _ in 0..5 {
        service
            .submit(quick())
            .expect("submit")
            .wait()
            .expect("serve");
    }

    let snap = service.metrics().snapshot();
    let judged = snap.counter(&names::serve_deadline_hit("quick"))
        + snap.counter(&names::serve_deadline_miss("quick"));
    assert_eq!(judged, 5, "accounting is unconditional");
    assert_eq!(
        snap.gauge(&names::serve_attainment_ppm("quick")),
        0,
        "derived gauge belongs to the live plane and must stay untouched"
    );
}

/// A two-edge window (`buckets: 1`, unbounded width) brackets exactly
/// the requests served between its two samples, no matter what ran
/// before the first edge.
#[test]
fn rolling_window_brackets_exactly_the_work_between_samples() {
    let ds = xgc1_dataset_sized(12, 60, 9);
    let canopus = Arc::new(engine(&ds, false));
    let service = CanopusService::start(Arc::clone(&canopus));

    // Pre-window noise the delta must not see.
    for _ in 0..4 {
        service
            .submit(quick())
            .expect("submit")
            .wait()
            .expect("serve");
    }

    let window = RollingWindow::new(WindowConfig {
        buckets: 1,
        bucket_secs: f64::MAX,
    });
    let sim = || canopus.hierarchy().clock().now().seconds();
    window.sample_now(service.metrics(), sim());
    let empty = window.delta().expect("first sample seeds both edges");
    assert_eq!(
        empty.count(&names::serve_completed("quick")),
        0,
        "a single-edge window is empty regardless of pre-window work"
    );

    let in_window = 7u64;
    for _ in 0..in_window {
        service
            .submit(quick())
            .expect("submit")
            .wait()
            .expect("serve");
    }
    window.sample_now(service.metrics(), sim());

    let d = window.delta().expect("two edges");
    assert_eq!(d.count(&names::serve_completed("quick")), in_window);
    let lat = d.histogram(&names::serve_latency_hist("quick"));
    assert_eq!(lat.count, in_window, "histogram delta sees only the window");
    assert!(d.wall_secs >= 0.0 && d.sim_secs >= 0.0);
}

/// The `/decisions` route over a hand-driven migrator is fully
/// deterministic: skewed reads promote the hot set, and the audit ring
/// the endpoint serves explains every action — promotions with their
/// destination tier, and each entry with a non-empty reason.
#[test]
fn decision_audit_endpoint_explains_a_deterministic_promotion() {
    let h = Arc::new(StorageHierarchy::new(vec![
        TierSpec::new("fast", 500, 1e9, 1e9, 1e-6),
        TierSpec::new("slow", 1 << 20, 1e7, 1e7, 1e-3),
    ]));
    let keys: Vec<String> = (0..8).map(|i| format!("obj/{i}")).collect();
    for (i, k) in keys.iter().enumerate() {
        h.write_to_tier(1, k, Bytes::from(vec![(i * 37 + 11) as u8; 100]))
            .expect("seed write");
    }
    let migrator = Arc::new(TierMigrator::new(
        Arc::clone(&h),
        TieringPolicy {
            cooldown_ticks: 2,
            ..TieringPolicy::new()
        },
    ));
    for _ in 0..4 {
        for k in &keys[..4] {
            h.read(k).expect("hot read");
        }
    }
    let report = migrator.maintain();
    assert!(report.promotions > 0, "hot keys must promote: {report:?}");

    let sources = canopus::TelemetrySources::new(Arc::new(Registry::new()))
        .with_migrator(Arc::clone(&migrator));
    let server = TelemetryServer::start("127.0.0.1:0", sources, TelemetryConfig::default())
        .expect("bind telemetry endpoint");

    let dec = get_json(&server, "/decisions");
    assert_eq!(
        dec.get("available").and_then(json::Value::as_bool),
        Some(true)
    );
    assert_eq!(
        dec.get("ticks").and_then(json::Value::as_u64),
        Some(migrator.ticks())
    );
    let listed = dec.get("decisions").and_then(json::Value::as_arr).unwrap();
    let promoted: Vec<_> = listed
        .iter()
        .filter(|d| d.get("action").and_then(json::Value::as_str) == Some("promote"))
        .collect();
    assert_eq!(
        promoted.len() as u32,
        report.promotions,
        "every performed promotion is audited"
    );
    for d in promoted {
        assert_eq!(d.get("to_tier").and_then(json::Value::as_i64), Some(0));
        assert!(!d
            .get("reason")
            .and_then(json::Value::as_str)
            .unwrap()
            .is_empty());
    }
    assert_eq!(
        dec.get("recorded").and_then(json::Value::as_u64),
        Some(listed.len() as u64),
        "nothing evicted yet: recorded equals retained"
    );
    assert_eq!(dec.get("evicted").and_then(json::Value::as_u64), Some(0));
}
