//! Property-based concurrency tests for the serving layer: whatever
//! random mix of requests, worker-pool size and cache configuration,
//! concurrent service answers must match a serial oracle — and dropping
//! a service with requests still queued must neither deadlock nor lose
//! an in-flight response.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig, CanopusService, ServeRequest};
use canopus_data::xgc1_dataset_sized;
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_obs::names;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const FILE: &str = "prop.bp";
const VAR: &str = "dpot";
const LEVELS: u32 = 3;

fn engine(workers: u32, cache: bool, seed: u64) -> Canopus {
    let ds = xgc1_dataset_sized(10, 50, seed);
    let raw = (ds.data.len() * 8) as u64;
    let config = CanopusConfig {
        refactor: RefactorConfig {
            num_levels: LEVELS,
            ..Default::default()
        },
        codec: RelativeCodec::Raw,
        serve_workers: workers,
        ..Default::default()
    };
    let config = if cache {
        config
    } else {
        CanopusConfig {
            level_cache: 0,
            ..config
        }
    };
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        config,
    );
    canopus.write(FILE, VAR, &ds.mesh, &ds.data).expect("write");
    canopus
}

/// Decode one `(kind, level, quadrant)` triple into a request.
fn request_from(kind: u8, level: u32, quadrant: u8, bb: &Aabb) -> ServeRequest {
    match kind % 3 {
        0 => ServeRequest::Base {
            file: FILE.into(),
            var: VAR.into(),
        },
        1 => ServeRequest::Level {
            file: FILE.into(),
            var: VAR.into(),
            level: level % LEVELS,
        },
        _ => {
            let cx = (bb.min.x + bb.max.x) / 2.0;
            let cy = (bb.min.y + bb.max.y) / 2.0;
            let (x0, y0) = match quadrant % 4 {
                0 => (bb.min.x, bb.min.y),
                1 => (cx, bb.min.y),
                2 => (bb.min.x, cy),
                _ => (cx, cy),
            };
            ServeRequest::Region {
                file: FILE.into(),
                var: VAR.into(),
                region: Aabb::from_points([
                    Point2::new(x0, y0),
                    Point2::new(x0 + (cx - bb.min.x), y0 + (cy - bb.min.y)),
                ]),
            }
        }
    }
}

fn arb_requests() -> impl Strategy<Value = Vec<(u8, u32, u8)>> {
    proptest::collection::vec((0u8..3, 0u32..LEVELS, 0u8..4), 3..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random interleavings of concurrent readers — any request vector,
    /// worker count and cache setting — return byte-identical data to
    /// the serial oracle for every single request.
    #[test]
    fn concurrent_answers_match_serial_oracle(
        specs in arb_requests(),
        workers in 1u32..5,
        cache in any::<bool>(),
        seed in 0u64..100,
    ) {
        let canopus = Arc::new(engine(workers, cache, seed));
        let bb = canopus
            .open(FILE)
            .expect("open")
            .read_base(VAR)
            .expect("base")
            .mesh
            .aabb();
        let requests: Vec<ServeRequest> = specs
            .iter()
            .map(|&(k, l, q)| request_from(k, l, q, &bb))
            .collect();

        // Serial oracle: a fresh pre-pipeline, cache-less reader per request.
        let expected: Vec<Vec<u64>> = requests
            .iter()
            .map(|r| {
                let reader = canopus
                    .open(FILE)
                    .expect("open")
                    .with_pipeline_depth(0)
                    .with_level_cache(0);
                let out = match r {
                    ServeRequest::Base { var, .. } => reader.read_base(var).expect("oracle"),
                    ServeRequest::Level { var, level, .. } => {
                        reader.read_level(var, *level).expect("oracle")
                    }
                    ServeRequest::Region { var, region, .. } => {
                        let base = reader.read_base(var).expect("oracle base");
                        reader.refine_region(var, &base, *region).expect("oracle").0
                    }
                };
                out.data.iter().map(|v| v.to_bits()).collect()
            })
            .collect();

        let service = CanopusService::start(Arc::clone(&canopus));
        // Submit everything up front from two client threads (even/odd
        // split), wait tickets in submission order: maximal overlap.
        let answers: Vec<(usize, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2usize)
                .map(|parity| {
                    let service = &service;
                    let requests = &requests;
                    scope.spawn(move || {
                        let tickets: Vec<(usize, _)> = requests
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % 2 == parity)
                            .map(|(i, r)| (i, service.submit(r.clone()).expect("submit")))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|(i, t)| {
                                let r = t.wait().expect("serve");
                                (i, r.outcome.data.iter().map(|v| v.to_bits()).collect())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });

        for (i, bits) in answers {
            prop_assert_eq!(
                &expected[i],
                &bits,
                "request {} diverged from the serial oracle",
                i
            );
        }
    }
}

/// Dropping a service with requests still queued neither deadlocks nor
/// loses in-flight responses: drop drains the queue, and every ticket
/// resolves.
#[test]
fn dropping_service_with_queued_requests_drains_them_all() {
    let canopus = Arc::new(engine(2, true, 17));
    let service = CanopusService::start(Arc::clone(&canopus));
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let request = if i % 3 == 0 {
                ServeRequest::Base {
                    file: FILE.into(),
                    var: VAR.into(),
                }
            } else {
                ServeRequest::Level {
                    file: FILE.into(),
                    var: VAR.into(),
                    level: 0,
                }
            };
            service.submit(request).expect("submit")
        })
        .collect();

    // Drop immediately: most of the twelve are still queued. Drop must
    // block until the workers drain them, then join.
    drop(service);

    for (i, t) in tickets.into_iter().enumerate() {
        let resolved = t
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("ticket {i} never resolved: response lost in shutdown"));
        let response = resolved.unwrap_or_else(|e| panic!("ticket {i} failed: {e}"));
        assert!(!response.outcome.data.is_empty());
    }

    // The engine outlives the service; its counters agree: everything
    // admitted was completed, nothing failed or was rejected.
    let obs = canopus.metrics();
    assert_eq!(obs.counter(names::SERVE_COMPLETED).get(), 12);
    assert_eq!(obs.counter(names::SERVE_FAILED).get(), 0);
}
