//! End-to-end pipeline integration: every dataset and every codec goes
//! through refactor → compress → place → read → decompress → restore, and
//! comes back within its accuracy contract.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_data::{all_datasets_small, Dataset};
use canopus_mesh::quality;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn titan(raw: u64) -> Arc<StorageHierarchy> {
    Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64))
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn range(data: &[f64]) -> f64 {
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

fn run_roundtrip(ds: &Dataset, codec: RelativeCodec, levels: u32) -> f64 {
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        titan(raw),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: levels,
                ..Default::default()
            },
            codec,
            ..Default::default()
        },
    );
    canopus
        .write("rt.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    let reader = canopus.open("rt.bp").expect("open");
    let out = reader.read_level(ds.var, 0).expect("restore");
    assert_eq!(out.data.len(), ds.data.len());
    assert_eq!(out.mesh.num_vertices(), ds.mesh.num_vertices());
    max_err(&out.data, &ds.data)
}

#[test]
fn zfp_pipeline_respects_bounds_on_all_datasets() {
    let rel = 1e-5;
    for ds in all_datasets_small(17) {
        let err = run_roundtrip(&ds, RelativeCodec::ZfpLike { rel_tolerance: rel }, 3);
        // Base + 2 deltas each within rel*range; errors add linearly.
        let bound = 3.0 * rel * range(&ds.data);
        assert!(err <= bound, "{}: err {err} > bound {bound}", ds.name);
    }
}

#[test]
fn sz_pipeline_respects_bounds_on_all_datasets() {
    let rel = 1e-5;
    for ds in all_datasets_small(23) {
        let err = run_roundtrip(
            &ds,
            RelativeCodec::SzLike {
                rel_error_bound: rel,
            },
            3,
        );
        let bound = 3.0 * rel * range(&ds.data);
        assert!(err <= bound, "{}: err {err} > bound {bound}", ds.name);
    }
}

#[test]
fn lossless_fpc_pipeline_restores_to_rounding() {
    for ds in all_datasets_small(31) {
        let err = run_roundtrip(&ds, RelativeCodec::Fpc, 3);
        // Only restoration's (a-b)+b rounding remains.
        let bound = 1e-12 * range(&ds.data).max(1.0);
        assert!(err <= bound, "{}: err {err}", ds.name);
    }
}

#[test]
fn deeper_hierarchies_still_roundtrip() {
    let ds = &all_datasets_small(5)[0];
    for levels in [1, 2, 4, 5] {
        let err = run_roundtrip(
            ds,
            RelativeCodec::ZfpLike {
                rel_tolerance: 1e-5,
            },
            levels,
        );
        let bound = levels as f64 * 1e-5 * range(&ds.data);
        assert!(
            err <= bound.max(1e-12),
            "levels {levels}: err {err} > {bound}"
        );
    }
}

#[test]
fn every_stored_level_mesh_is_valid_after_storage_roundtrip() {
    let ds = &all_datasets_small(9)[0];
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(titan(raw), CanopusConfig::default());
    canopus
        .write("q.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    let reader = canopus.open("q.bp").expect("open");
    // Walk all levels; each restored mesh must be manifold and agree in
    // size with its data.
    let mut outcome = reader.read_base(ds.var).expect("base");
    loop {
        let report = quality::check(&outcome.mesh);
        assert!(report.is_manifold, "level {} broken", outcome.level);
        assert_eq!(report.inverted_triangles, 0);
        assert_eq!(outcome.mesh.num_vertices(), outcome.data.len());
        if outcome.level == 0 {
            break;
        }
        outcome = reader.refine_once(ds.var, &outcome).expect("refine").0;
    }
}

#[test]
fn two_variables_share_one_file() {
    let sets = all_datasets_small(13);
    let ds = &sets[0];
    let raw = (ds.data.len() * 8) as u64 * 4;
    let canopus = Canopus::new(titan(raw), CanopusConfig::default());
    // Same mesh, two different fields (second = scaled copy).
    let doubled: Vec<f64> = ds.data.iter().map(|v| v * 2.0).collect();
    canopus
        .write("multi.bp", "a", &ds.mesh, &ds.data)
        .expect("write a");
    // NB: each write overwrites file-level metadata; use a distinct file
    // per variable, which is how the paper's per-variable refactoring
    // works too.
    canopus
        .write("multi2.bp", "b", &ds.mesh, &doubled)
        .expect("write b");
    let ra = canopus.open("multi.bp").expect("open a");
    let rb = canopus.open("multi2.bp").expect("open b");
    let a = ra.read_level("a", 0).expect("a");
    let b = rb.read_level("b", 0).expect("b");
    for (x, y) in a.data.iter().zip(&b.data) {
        assert!((y - 2.0 * x).abs() < 1e-3);
    }
}

#[test]
fn write_then_delete_frees_all_tiers() {
    let ds = &all_datasets_small(3)[2];
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(titan(raw), CanopusConfig::default());
    canopus
        .write("tmp.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    let used_before: u64 = (0..canopus.hierarchy().num_tiers())
        .map(|t| canopus.hierarchy().tier_device(t).unwrap().used())
        .sum();
    assert!(used_before > 0);
    canopus.store().delete("tmp.bp").expect("delete");
    let used_after: u64 = (0..canopus.hierarchy().num_tiers())
        .map(|t| canopus.hierarchy().tier_device(t).unwrap().used())
        .sum();
    assert_eq!(used_after, 0, "delete must release every byte");
}
