//! Span causality: the flat event stream a [`RingBufferSink`] captures
//! must reassemble into one connected span *tree* per read call — the
//! property the Chrome-trace exporter and the `canopus trace`
//! subcommand rely on. The pipelined engine hands work to prefetch and
//! decode-pool threads, so these tests pin down that cross-thread spans
//! still parent to the calling read's root, that retry/fault events
//! nest under the block fetch that observed them, and that the serial
//! engine tells the same causal story as the pipelined one.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig, FaultPlan};
use canopus_data::xgc1_dataset_sized;
use canopus_obs::{Event, FieldValue, RingBufferSink};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const LEVELS: u32 = 3;

/// The observability fixture (see `tests/observability.rs`), with the
/// restore engine selectable: `pipeline_depth = 0` is the serial walk,
/// anything larger the pipelined one.
fn written_canopus(pipeline_depth: u32) -> (Canopus, canopus_data::Dataset) {
    let ds = xgc1_dataset_sized(20, 20, 7);
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(
        hierarchy,
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            codec: RelativeCodec::Fpc,
            pipeline_depth,
            ..Default::default()
        },
    );
    canopus
        .write("trace.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (canopus, ds)
}

/// Run one instrumented `read_level(var, 0)` and return the captured
/// events (the write happens before the sink is armed, so the stream
/// holds exactly one read call's tree).
fn traced_read(pipeline_depth: u32) -> Vec<Event> {
    let (canopus, ds) = written_canopus(pipeline_depth);
    canopus
        .metrics()
        .set_sink(Arc::new(RingBufferSink::with_capacity(4096)));
    let reader = canopus.open("trace.bp").expect("open");
    reader.read_level(ds.var, 0).expect("restore to L0");
    let snap = canopus.metrics().snapshot();
    assert_eq!(snap.dropped_events, 0, "sink must hold the whole tree");
    snap.events
}

fn uint(e: &Event, key: &str) -> Option<u64> {
    match e.field(key)? {
        FieldValue::Uint(u) => Some(*u),
        _ => None,
    }
}

/// `span_id → name` for every span event in the stream.
fn span_names(events: &[Event]) -> BTreeMap<u64, String> {
    events
        .iter()
        .filter_map(|e| Some((uint(e, "span_id")?, e.name.clone())))
        .collect()
}

/// The tree as a set of `(name, parent name)` edges — instant events
/// included; roots parent to `"<root>"`.
fn edge_set(events: &[Event]) -> BTreeSet<(String, String)> {
    let names = span_names(events);
    events
        .iter()
        .map(|e| {
            let parent = match uint(e, "parent_id") {
                Some(id) => names
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| panic!("{}: parent {id} missing from stream", e.name)),
                None => "<root>".to_string(),
            };
            (e.name.clone(), parent)
        })
        .collect()
}

#[test]
fn pipelined_decode_spans_all_parent_to_one_read_root() {
    let events = traced_read(CanopusConfig::default().pipeline_depth.max(2));

    // Exactly one root: the read call itself.
    let roots: Vec<&Event> = events
        .iter()
        .filter(|e| uint(e, "span_id").is_some() && uint(e, "parent_id").is_none())
        .collect();
    assert_eq!(roots.len(), 1, "one read call, one root span");
    assert_eq!(roots[0].name, "read");
    let root_id = uint(roots[0], "span_id").unwrap();

    // Every fetch, decode (decode-pool threads included) and restore of
    // the walk hangs directly off that root — this is what lets the
    // exporter reassemble the tree even though the workers emit from
    // their own thread lanes.
    for name in ["read.block", "decode", "restore"] {
        let children: Vec<&Event> = events.iter().filter(|e| e.name == name).collect();
        assert!(!children.is_empty(), "walk must emit {name} spans");
        for c in &children {
            assert_eq!(
                uint(c, "parent_id"),
                Some(root_id),
                "{name} span must parent to the read root"
            );
            assert!(uint(c, "tid").is_some(), "{name} carries a thread lane");
        }
    }
    // Base → L0 applies one restore per intermediate level.
    let restores = events.iter().filter(|e| e.name == "restore").count();
    assert_eq!(restores, (LEVELS - 1) as usize);
}

#[test]
fn retry_and_fault_events_nest_under_their_block_spans() {
    let (canopus, ds) = written_canopus(CanopusConfig::default().pipeline_depth);
    canopus
        .metrics()
        .set_sink(Arc::new(RingBufferSink::with_capacity(4096)));
    let reader = canopus.open("trace.bp").expect("open");
    // Deterministic transient faults, armed after open so the manifest
    // read stays clean — the same schedule the observability suite uses.
    canopus.hierarchy().set_fault_plan_all(FaultPlan {
        seed: 11,
        get_error_p: 0.25,
        ..FaultPlan::none()
    });
    reader
        .read_level(ds.var, 0)
        .expect("retries cure the faults");

    let events = canopus.metrics().snapshot().events;
    let block_ids: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "read.block")
        .filter_map(|e| uint(e, "span_id"))
        .collect();

    let faults: Vec<&Event> = events.iter().filter(|e| e.name == "read.fault").collect();
    let retries: Vec<&Event> = events.iter().filter(|e| e.name == "read.retry").collect();
    assert!(!faults.is_empty(), "the schedule must actually fire");
    assert!(!retries.is_empty(), "cured faults imply retries");
    for e in faults.iter().chain(&retries) {
        let parent = uint(e, "parent_id").expect("retry/fault events are never roots");
        assert!(
            block_ids.contains(&parent),
            "{} must nest under the read.block span that observed it",
            e.name
        );
        assert!(
            uint(e, "attempt").is_some(),
            "{} records its attempt",
            e.name
        );
    }
}

#[test]
fn serial_and_pipelined_walks_tell_the_same_causal_story() {
    let serial = edge_set(&traced_read(0));
    let pipelined = edge_set(&traced_read(CanopusConfig::default().pipeline_depth.max(2)));
    assert_eq!(
        serial, pipelined,
        "both engines must produce the same span-tree shape"
    );
    // And that shared shape is the documented one: a flat two-level tree
    // under a single read root.
    for edge in [
        ("read", "<root>"),
        ("read.block", "read"),
        ("decode", "read"),
        ("restore", "read"),
    ] {
        assert!(
            serial.contains(&(edge.0.to_string(), edge.1.to_string())),
            "missing edge {edge:?}"
        );
    }
}
