//! Integration tests for workload-adaptive tier placement (PR 9).
//!
//! Everything here runs on the deterministic `SimClock` / logical access
//! clock, so the policy tests are exact: a skewed read stream promotes
//! the hot set into the fast tier, a shifted stream swaps the new hot
//! set in (demoting the stale one), and the swap-margin hysteresis
//! keeps alternating equal-heat access from ping-ponging objects
//! between tiers. The property test then hammers raw migrations with
//! concurrent readers and checks the copy-verify-then-remove invariant
//! end to end: no read ever fails, and no key is ever lost, duplicated
//! across tiers, or corrupted.

use bytes::Bytes;
use canopus::{TierMigrator, TieringPolicy};
use canopus_storage::{StorageHierarchy, TierSpec};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Two-tier hierarchy with the given byte capacities; bandwidths are
/// lopsided (fast tier 100x) so placement visibly matters.
fn two_tier(fast: u64, slow: u64) -> Arc<StorageHierarchy> {
    Arc::new(StorageHierarchy::new(vec![
        TierSpec::new("fast", fast, 1e9, 1e9, 1e-6),
        TierSpec::new("slow", slow, 1e7, 1e7, 1e-3),
    ]))
}

/// Deterministic payload for object `i`: recognizable fill byte so any
/// cross-key mixup shows up as a content mismatch, not just a length one.
fn payload(i: usize, len: usize) -> Bytes {
    Bytes::from(vec![(i * 37 + 11) as u8; len])
}

#[test]
fn shifting_hot_set_tracks_into_the_fast_tier() {
    // Fast tier: 500 B, high watermark 0.90 -> at most 450 B may be
    // resident. Eight 100 B objects, all written cold to the slow tier.
    let h = two_tier(500, 1 << 20);
    let keys: Vec<String> = (0..8).map(|i| format!("obj/{i}")).collect();
    for (i, k) in keys.iter().enumerate() {
        h.write_to_tier(1, k, payload(i, 100)).expect("seed write");
    }
    let policy = TieringPolicy {
        cooldown_ticks: 2,
        ..TieringPolicy::new()
    };
    let migrator = TierMigrator::new(Arc::clone(&h), policy);

    // Phase 1: skew the reads onto the first four objects. Four hits
    // each clears `promote_hits`, and 400 B fits under the watermark.
    for _ in 0..4 {
        for k in &keys[..4] {
            h.read(k).expect("hot read");
        }
    }
    let warm = migrator.maintain();
    assert!(warm.promotions > 0, "hot keys must promote: {warm:?}");
    for k in &keys[..4] {
        assert_eq!(h.find(k).expect("found"), 0, "{k} belongs on fast");
    }
    for k in &keys[4..] {
        assert_eq!(h.find(k).expect("found"), 1, "{k} was never touched");
    }
    // Steady state: with no new accesses there is nothing left to move.
    assert_eq!(migrator.maintain().moves(), 0, "idle ticks must be no-ops");

    // Phase 2: the workload shifts — the other four objects go hot
    // while the old hot set cools off. The fast tier is full past its
    // watermark for any newcomer, so every promotion must displace a
    // (now much colder) stale resident via the swap path.
    for _ in 0..10 {
        for k in &keys[4..] {
            h.read(k).expect("shifted read");
        }
    }
    let (mut promoted, mut demoted) = (0u32, 0u32);
    for _ in 0..6 {
        let r = migrator.maintain();
        promoted += r.promotions;
        demoted += r.demotions;
    }
    assert!(promoted > 0, "new hot set must promote");
    assert!(demoted > 0, "stale hot set must make room");
    let new_on_fast = keys[4..]
        .iter()
        .filter(|k| h.find(k).expect("found") == 0)
        .count();
    let old_on_slow = keys[..4]
        .iter()
        .filter(|k| h.find(k).expect("found") == 1)
        .count();
    assert!(new_on_fast >= 3, "shifted hot set on fast: {new_on_fast}/4");
    assert!(old_on_slow >= 3, "stale set demoted: {old_on_slow}/4");

    // The watermark invariant held through every swap: promotions only
    // ever land in (created) headroom, never above the high watermark.
    let used = h.tier_device(0).expect("t0").used();
    assert!(used <= 450, "fast tier above high watermark: {used} B");

    // And nothing was lost or corrupted by all the churn.
    for (i, k) in keys.iter().enumerate() {
        let (data, _, _) = h.read(k).expect("survives churn");
        assert_eq!(data, payload(i, 100), "{k} bytes intact");
    }
}

#[test]
fn equal_heat_alternation_does_not_ping_pong() {
    // Fast tier fits exactly one object under its watermark (0.9 * 150
    // = 135 B). Promote "a", then alternate reads between "a" and "b"
    // so their heats stay comparable: without the swap margin the two
    // would thrash places every tick; with it, nothing moves at all.
    let h = two_tier(150, 1 << 20);
    for (i, k) in ["a", "b"].iter().enumerate() {
        h.write_to_tier(1, k, payload(i, 100)).expect("seed write");
    }
    let migrator = TierMigrator::new(Arc::clone(&h), TieringPolicy::new());

    for _ in 0..4 {
        h.read("a").expect("warm a");
    }
    assert!(migrator.maintain().promotions > 0, "a promotes first");
    assert_eq!(h.find("a").expect("found"), 0);

    let mut later_moves = 0;
    for _ in 0..12 {
        h.read("a").expect("read a");
        h.read("b").expect("read b");
        later_moves += migrator.maintain().moves();
    }
    assert_eq!(
        later_moves, 0,
        "equal-heat rivals must not displace each other"
    );
    assert_eq!(h.find("a").expect("found"), 0, "a stays resident");
    assert_eq!(h.find("b").expect("found"), 1, "b never swaps in");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Migration under concurrent readers never loses, duplicates, or
    /// corrupts a key: readers spin on `read()` (which rides the
    /// find/get retry that covers the copy-verify-then-remove window)
    /// while the main thread shuttles every key between tiers; at the
    /// end each key lives on exactly one tier with its exact bytes.
    #[test]
    fn concurrent_readers_never_observe_loss_or_corruption(
        nkeys in 3usize..8,
        size in 64usize..400,
        rounds in 2usize..5,
        readers in 1usize..4,
    ) {
        let h = two_tier(1 << 22, 1 << 26);
        h.enable_access_tracking(); // tracker bookkeeping rides along
        let keys: Vec<String> = (0..nkeys).map(|i| format!("prop/{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            h.write_to_tier(1, k, payload(i, size + i)).expect("seed write");
        }

        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for r in 0..readers {
                let (h, keys, stop) = (&h, &keys, &stop);
                scope.spawn(move || {
                    let mut i = r;
                    while !stop.load(Ordering::Relaxed) {
                        let idx = i % keys.len();
                        let (data, _, _) = h
                            .read(&keys[idx])
                            .expect("reads must never fail mid-migration");
                        assert_eq!(
                            data,
                            payload(idx, size + idx),
                            "mid-migration read of {} corrupted",
                            keys[idx]
                        );
                        i += 1;
                    }
                });
            }
            for round in 0..rounds {
                for (i, k) in keys.iter().enumerate() {
                    let target = (round + i) % 2;
                    h.migrate(k, target).expect("unfaulted migrate succeeds");
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        for (i, k) in keys.iter().enumerate() {
            let on_fast = h.tier_device(0).expect("t0").contains(k);
            let on_slow = h.tier_device(1).expect("t1").contains(k);
            prop_assert!(
                on_fast ^ on_slow,
                "{} must live on exactly one tier (fast={}, slow={})",
                k, on_fast, on_slow
            );
            let (data, _, _) = h.read(k).expect("final read");
            prop_assert_eq!(data, payload(i, size + i), "{} bytes exact", k);
        }
    }
}
