//! Observability integration: the shared metrics registry must tell the
//! truth about the pipeline it instruments. A full write → restore-to-L0
//! cycle is replayed with a lossless codec, and the resulting
//! `MetricsSnapshot` is checked against ground truth the test can compute
//! independently (raw byte counts, block counts, tier traffic), plus the
//! structural invariants every snapshot must satisfy and the JSON
//! round-trip the `--metrics` flag and `canopus metrics` subcommand rely
//! on.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig, MetricsSnapshot};
use canopus_data::xgc1_dataset_sized;
use canopus_obs::{names, RingBufferSink};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

const LEVELS: u32 = 3;

fn written_canopus() -> (Canopus, canopus_data::Dataset) {
    let ds = xgc1_dataset_sized(20, 20, 7);
    let raw = (ds.data.len() * 8) as u64;
    let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64));
    let canopus = Canopus::new(
        hierarchy,
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            codec: RelativeCodec::Fpc,
            ..Default::default()
        },
    );
    canopus
        .write("obs.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (canopus, ds)
}

/// Restore to L0 through the instrumented read path and return the final
/// snapshot alongside the restored data.
fn restore_and_snapshot() -> (MetricsSnapshot, Vec<f64>, canopus_data::Dataset) {
    let (canopus, ds) = written_canopus();
    let reader = canopus.open("obs.bp").expect("open");
    let out = reader.read_level(ds.var, 0).expect("restore to L0");
    (canopus.metrics().snapshot(), out.data, ds)
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn value_range(data: &[f64]) -> f64 {
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

#[test]
fn lossless_restore_to_l0_is_faithful_and_fully_counted() {
    let (snap, restored, ds) = restore_and_snapshot();

    // Data contract: FPC is lossless, so only the (a - b) + b restoration
    // rounding remains.
    assert_eq!(restored.len(), ds.data.len());
    let err = max_err(&restored, &ds.data);
    let bound = 1e-12 * value_range(&ds.data).max(1.0);
    assert!(
        err <= bound,
        "restore error {err} exceeds rounding bound {bound}"
    );

    // Write-side ground truth the test can compute independently.
    assert_eq!(snap.counter(names::WRITES), 1);
    assert_eq!(
        snap.counter(names::WRITE_BYTES_RAW),
        (ds.data.len() * 8) as u64,
        "raw byte counter must equal the input payload"
    );
    assert!(snap.counter(names::WRITE_BYTES_STORED) > 0);
    // base + (LEVELS - 1) deltas at minimum.
    assert!(snap.counter(names::WRITE_PRODUCTS) >= LEVELS as u64);

    // Read-side: restoring L0 from a base at level LEVELS-1 applies
    // exactly LEVELS-1 refinements, each reading one delta block, plus
    // the base block itself.
    assert_eq!(snap.counter(names::READ_REFINEMENTS), (LEVELS - 1) as u64);
    assert!(snap.counter(names::READ_BLOCKS) >= LEVELS as u64);
    assert!(snap.counter(names::READ_BYTES_IO) > 0);
    // Base + deltas are decoded per level, so the decoded-value count
    // strictly exceeds the final field size whenever refinements ran.
    assert!(
        snap.counter(names::READ_VALUES_DECODED) > restored.len() as u64,
        "decoded {} values for a {}-value L0 field",
        snap.counter(names::READ_VALUES_DECODED),
        restored.len()
    );
}

#[test]
fn timer_and_counter_invariants_hold() {
    let (snap, _, _) = restore_and_snapshot();

    // One READ_IO timer sample per block read.
    assert_eq!(
        snap.timer(names::READ_IO).count,
        snap.counter(names::READ_BLOCKS),
        "every observed block read records exactly one I/O timer sample"
    );
    // Simulated I/O time flows through the timers; wall time is recorded
    // alongside it.
    assert!(snap.timer(names::READ_IO).sim_secs > 0.0);
    assert!(snap.timer(names::WRITE_TOTAL).wall_secs > 0.0);
    assert!(snap.timer(names::WRITE_IO).sim_secs > 0.0);

    // Core-level I/O bytes are a subset of device-level traffic: the
    // tiers additionally serve metadata objects.
    assert!(snap.total_tier_bytes_read() >= snap.counter(names::READ_BYTES_IO));
    assert!(snap.total_tier_bytes_written() >= snap.counter(names::WRITE_BYTES_STORED));

    // Every stored product got a placement decision on some tier.
    let placements: u64 = (0..snap.num_tiers_observed())
        .map(|t| snap.placements_on_tier(t))
        .sum();
    assert_eq!(placements, snap.counter(names::WRITE_PRODUCTS));

    // Phase breakdowns are proper distributions once time was recorded.
    for breakdown in [snap.read_breakdown(), snap.write_breakdown()] {
        let sum: f64 = breakdown.iter().map(|(_, f)| f).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "fractions sum to 1: {breakdown:?}"
        );
        assert!(breakdown.iter().all(|&(_, f)| (0.0..=1.0).contains(&f)));
    }
    let io_frac = snap.read_io_fraction();
    assert!(io_frac > 0.0 && io_frac <= 1.0, "io fraction {io_frac}");

    // FPC saw compression traffic, and its ratio is well-defined.
    assert!(snap.codecs_observed().contains(&"fpc".to_string()));
    assert!(snap.compression_ratio("fpc").unwrap() > 0.0);
}

#[test]
fn snapshot_round_trips_through_json() {
    let (snap, _, _) = restore_and_snapshot();
    let text = snap.to_json_string();
    let back = MetricsSnapshot::from_json_str(&text).expect("parse own JSON");
    assert_eq!(back, snap, "JSON round-trip must be lossless");

    // Typed accessors agree across the round-trip.
    assert_eq!(
        back.counter(names::READ_BLOCKS),
        snap.counter(names::READ_BLOCKS)
    );
    assert_eq!(back.timer(names::READ_IO), snap.timer(names::READ_IO));
    assert_eq!(back.read_breakdown(), snap.read_breakdown());
}

#[test]
fn ring_buffer_sink_captures_restore_spans() {
    let (canopus, ds) = written_canopus();
    canopus
        .metrics()
        .set_sink(Arc::new(RingBufferSink::with_capacity(256)));

    let reader = canopus.open("obs.bp").expect("open");
    let mut prog = reader.progressive(ds.var).expect("progressive");
    while !prog.at_full_accuracy() {
        prog.refine().expect("refine");
    }

    let snap = canopus.metrics().snapshot();
    let restores: Vec<_> = snap.events.iter().filter(|e| e.name == "restore").collect();
    assert_eq!(
        restores.len(),
        (LEVELS - 1) as usize,
        "one restore span per refinement: {:?}",
        snap.events
    );
    for event in restores {
        assert!(event.field("var").is_some(), "span keeps its fields");
        assert!(event.field("wall_secs").is_some(), "span records duration");
    }

    // Events survive the JSON round-trip too.
    let back = MetricsSnapshot::from_json_str(&snap.to_json_string()).expect("parse");
    assert_eq!(back.events, snap.events);
}

/// The pipelined engine and the decoded-level cache publish their
/// metrics under the shared names, and they land in `MetricsSnapshot`
/// exactly as `canopus metrics` will report them.
#[test]
fn cache_and_pipeline_metrics_land_in_snapshot() {
    let (canopus, ds) = written_canopus();
    let reader = canopus.open("obs.bp").expect("open"); // default engine
    reader.read_level(ds.var, 0).expect("cold restore");

    let snap = canopus.metrics().snapshot();
    // One pipelined walk ran; the prefetch gauges saw it.
    assert_eq!(snap.counter(names::READ_PIPELINED_RESTORES), 1);
    assert!(snap.gauge(names::READ_PREFETCH_DEPTH_PEAK) >= 1);
    assert_eq!(
        snap.gauge(names::READ_PREFETCH_DEPTH),
        0,
        "prefetch queue drains back to empty"
    );
    // Overlap is recorded per pipelined restore (possibly zero wall).
    assert_eq!(snap.timer(names::READ_OVERLAP).count, 1);
    // Cold read: every probed level missed, nothing hit yet.
    assert!(snap.counter(names::READ_CACHE_MISSES) > 0);
    assert_eq!(snap.counter(names::READ_CACHE_HITS), 0);

    // The repeat read hits the cache and moves zero tier bytes.
    let io_before = snap.counter(names::READ_BYTES_IO);
    reader.read_level(ds.var, 0).expect("warm restore");
    let snap = canopus.metrics().snapshot();
    assert_eq!(snap.counter(names::READ_CACHE_HITS), 1);
    assert_eq!(snap.counter(names::READ_BYTES_IO), io_before);

    // All of it survives the JSON round-trip the CLI depends on.
    let back = MetricsSnapshot::from_json_str(&snap.to_json_string()).expect("parse");
    for name in [
        names::READ_CACHE_HITS,
        names::READ_CACHE_MISSES,
        names::READ_PIPELINED_RESTORES,
    ] {
        assert_eq!(back.counter(name), snap.counter(name), "{name}");
    }
    assert_eq!(
        back.gauge(names::READ_PREFETCH_DEPTH_PEAK),
        snap.gauge(names::READ_PREFETCH_DEPTH_PEAK)
    );
    assert_eq!(
        back.timer(names::READ_OVERLAP),
        snap.timer(names::READ_OVERLAP)
    );
}

/// The level-streaming write engine publishes its `write.*` metrics and
/// the storage write-behind gauges under the shared names, and they all
/// land in the snapshot JSON the CLI reports.
#[test]
fn write_pipeline_metrics_land_in_snapshot() {
    let (canopus, _) = written_canopus(); // default engine: pipelined
    let snap = canopus.metrics().snapshot();

    // One pipelined write ran; the stage-depth gauges saw it.
    assert_eq!(snap.counter(names::WRITE_PIPELINED), 1);
    assert!(snap.gauge(names::WRITE_STAGE_DEPTH_PEAK) >= 1);
    assert_eq!(
        snap.gauge(names::WRITE_STAGE_DEPTH),
        0,
        "job queue drains back to empty"
    );
    // Overlap is recorded once per pipelined write (possibly zero wall).
    assert_eq!(snap.timer(names::WRITE_OVERLAP).count, 1);
    // The write-behind queues drained before the commit barrier returned;
    // their high-water marks were recorded while blocks were in flight.
    let mut peak_seen = 0i64;
    for tier in 0..snap.num_tiers_observed() {
        assert_eq!(
            snap.gauge(&names::writeback_occupancy(tier)),
            0,
            "tier {tier} write-behind queue drains to empty"
        );
        peak_seen = peak_seen.max(snap.gauge(&names::writeback_occupancy_peak(tier)));
    }
    assert!(peak_seen >= 1, "some tier queue held at least one block");
    // Phase timers fire under the pipelined engine exactly as serially.
    assert!(snap.timer(names::WRITE_IO).sim_secs > 0.0);
    assert_eq!(snap.timer(names::WRITE_TOTAL).count, 1);

    // All of it survives the JSON round-trip the CLI depends on.
    let back = MetricsSnapshot::from_json_str(&snap.to_json_string()).expect("parse");
    assert_eq!(back.counter(names::WRITE_PIPELINED), 1);
    assert_eq!(
        back.gauge(names::WRITE_STAGE_DEPTH_PEAK),
        snap.gauge(names::WRITE_STAGE_DEPTH_PEAK)
    );
    assert_eq!(
        back.timer(names::WRITE_OVERLAP),
        snap.timer(names::WRITE_OVERLAP)
    );
    for tier in 0..snap.num_tiers_observed() {
        let name = names::writeback_occupancy_peak(tier);
        assert_eq!(back.gauge(&name), snap.gauge(&name), "{name}");
    }
}

/// The serial oracle engine records the same totals but none of the
/// pipeline-only metrics.
#[test]
fn serial_write_records_no_pipeline_metrics() {
    let ds = xgc1_dataset_sized(20, 20, 7);
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            codec: RelativeCodec::Fpc,
            write_pipeline_depth: 0,
            ..Default::default()
        },
    );
    canopus
        .write("obs.bp", ds.var, &ds.mesh, &ds.data)
        .expect("serial write");
    let snap = canopus.metrics().snapshot();
    assert_eq!(snap.counter(names::WRITE_PIPELINED), 0);
    assert_eq!(snap.timer(names::WRITE_OVERLAP).count, 0);
    assert_eq!(snap.gauge(names::WRITE_STAGE_DEPTH_PEAK), 0);
    // The totals still flow.
    assert_eq!(snap.counter(names::WRITES), 1);
    assert!(snap.timer(names::WRITE_IO).sim_secs > 0.0);
}

/// The fault-tolerance layer publishes its counters — retries, observed
/// faults, checksum failures, degraded restores and per-tier injection
/// counts — under the shared names, and they land in the snapshot JSON.
#[test]
fn fault_and_retry_metrics_land_in_snapshot() {
    use canopus_storage::FaultPlan;

    // Part 1: transient faults ridden out by retries.
    let (canopus, ds) = written_canopus();
    let reader = canopus.open("obs.bp").expect("open");
    // Armed only after open: the manifest read has no retry loop.
    canopus.hierarchy().set_fault_plan_all(FaultPlan {
        seed: 11,
        get_error_p: 0.25,
        ..FaultPlan::none()
    });
    let out = reader
        .read_level(ds.var, 0)
        .expect("transients within budget never fail the read");
    assert!(!out.degraded);

    let snap = canopus.metrics().snapshot();
    assert!(snap.counter(names::READ_RETRIES) > 0, "retries counted");
    assert!(snap.counter(names::READ_FAULTS_INJECTED) > 0);
    assert_eq!(snap.counter(names::READ_CHECKSUM_FAILURES), 0);
    assert_eq!(snap.counter(names::READ_DEGRADED_RESTORES), 0);
    // Every reader-observed fault was injected by some tier.
    let tier_faults: u64 = (0..snap.num_tiers_observed())
        .map(|t| snap.counter(&names::tier_faults(t)))
        .sum();
    assert_eq!(tier_faults, snap.counter(names::READ_FAULTS_INJECTED));

    // All of it survives the JSON round-trip the CLI depends on.
    let back = MetricsSnapshot::from_json_str(&snap.to_json_string()).expect("parse");
    for name in [names::READ_RETRIES, names::READ_FAULTS_INJECTED] {
        assert_eq!(back.counter(name), snap.counter(name), "{name}");
    }

    // Part 2: persistent in-flight corruption on the slow tier exhausts
    // the budget; the checksum counter moves and the walk degrades. The
    // fast tier is sized so the base products stay on tier 0 — only
    // finer levels become unreachable.
    let ds = xgc1_dataset_sized(20, 20, 7);
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::new(vec![
            canopus_storage::TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
            canopus_storage::TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
        ])),
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            codec: RelativeCodec::Fpc,
            ..Default::default()
        },
    );
    canopus
        .write("obs.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    let reader = canopus.open("obs.bp").expect("open");
    canopus
        .hierarchy()
        .set_fault_plan(
            1,
            FaultPlan {
                seed: 3,
                corrupt_p: 1.0,
                ..FaultPlan::none()
            },
        )
        .expect("tier 1 exists");
    let out = reader
        .read_level(ds.var, 0)
        .expect("unreachable levels degrade, never error");
    assert!(out.degraded, "slow-tier corruption must degrade the walk");
    let snap = canopus.metrics().snapshot();
    assert!(snap.counter(names::READ_CHECKSUM_FAILURES) > 0);
    assert!(snap.counter(names::READ_DEGRADED_RESTORES) >= 1);
    assert!(snap.counter(&names::tier_faults(1)) > 0);
}

#[test]
fn disabled_sink_records_no_events_but_all_metrics() {
    let (snap, _, _) = restore_and_snapshot();
    assert!(
        snap.events.is_empty(),
        "no sink installed, no events retained"
    );
    assert!(
        snap.counter(names::READ_BLOCKS) > 0,
        "metrics flow regardless"
    );
}
