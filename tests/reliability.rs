//! Reliability integration: deterministic fault injection against the
//! full write → restore pipeline.
//!
//! The contract under test (paper-level: elastic analytics must keep
//! answering while the storage hierarchy misbehaves):
//!
//! * **equivalence** — under transient-only faults that stay within the
//!   retry budget, restored bytes are identical to the fault-free run,
//!   through both restore engines;
//! * **degradation** — when a tier stays down past the budget, a level
//!   walk returns the finest restorable level with
//!   [`ReadOutcome::degraded`](canopus::ReadOutcome) set — level-only
//!   unavailability is never an error;
//! * **integrity** — in-flight payload corruption is caught by the
//!   manifest checksums and cured by re-fetching.
//!
//! Every fault schedule is seeded and keyed off the (op, key, attempt)
//! triple, so these tests are exactly reproducible — no sleeps, no
//! timing dependence, no flakes.

use canopus::config::RelativeCodec;
use canopus::read::CanopusReader;
use canopus::{Canopus, CanopusConfig, FaultPlan};
use canopus_data::cfd_dataset_sized;
use canopus_obs::names;
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::{StorageHierarchy, TierSpec};
use std::sync::Arc;

const LEVELS: u32 = 3;

/// A two-tier hierarchy with enough fast-tier headroom that the base
/// products always land on tier 0 — so only *finer levels* become
/// unreachable when tier 1 (where RankSpread sends the deltas) fails.
fn written() -> (canopus_data::Dataset, Canopus) {
    let ds = cfd_dataset_sized(20, 16, 44);
    let h = Arc::new(StorageHierarchy::new(vec![
        TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
        TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
    ]));
    let canopus = Canopus::new(
        h,
        CanopusConfig {
            refactor: RefactorConfig {
                num_levels: LEVELS,
                ..Default::default()
            },
            codec: RelativeCodec::Fpc,
            ..Default::default()
        },
    );
    canopus
        .write("rel.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (ds, canopus)
}

/// Readers are opened *before* faults are armed: the manifest read has
/// no retry loop, and arming afterwards scopes injection to block I/O.
fn both_engines(canopus: &Canopus) -> [CanopusReader; 2] {
    let serial = canopus
        .open("rel.bp")
        .expect("open")
        .with_level_cache(0)
        .with_pipeline_depth(0);
    let pipelined = canopus.open("rel.bp").expect("open").with_level_cache(0);
    [serial, pipelined]
}

#[test]
fn transient_faults_restore_byte_identical_to_fault_free_run() {
    let (ds, canopus) = written();
    let clean = canopus
        .open("rel.bp")
        .expect("open")
        .with_level_cache(0)
        .read_level(ds.var, 0)
        .expect("fault-free restore");
    let engines = both_engines(&canopus);
    canopus.hierarchy().set_fault_plan_all(FaultPlan {
        seed: 9,
        get_error_p: 0.35,
        ..FaultPlan::none()
    });

    for reader in &engines {
        let out = reader.read_level(ds.var, 0).expect("rides out transients");
        assert!(!out.degraded, "transients within budget never degrade");
        assert_eq!(out.level, 0);
        assert_eq!(
            out.data, clean.data,
            "equivalence guarantee: restored bytes identical to the \
             fault-free run"
        );
    }
    assert!(
        canopus.metrics().counter(names::READ_RETRIES).get() > 0,
        "the guarantee must have been exercised, not vacuous"
    );
}

#[test]
fn short_outage_is_cured_by_the_retry_budget() {
    let (ds, canopus) = written();
    let clean = canopus
        .open("rel.bp")
        .expect("open")
        .with_level_cache(0)
        .read_level(ds.var, 0)
        .expect("fault-free restore");
    let reader = canopus.open("rel.bp").expect("open").with_level_cache(0);
    // Tier 1 rejects its first two operations, then recovers — retries
    // advance the per-tier op index past the window.
    canopus
        .hierarchy()
        .set_fault_plan(
            1,
            FaultPlan {
                seed: 2,
                down: Some((0, 2)),
                ..FaultPlan::none()
            },
        )
        .expect("tier 1 exists");

    let out = reader.read_level(ds.var, 0).expect("outage within budget");
    assert!(!out.degraded);
    assert_eq!(out.data, clean.data);
    assert!(canopus.metrics().counter(names::READ_RETRIES).get() > 0);
}

#[test]
fn hard_down_tier_degrades_to_best_reachable_level_and_never_errors() {
    let (ds, canopus) = written();
    // Clean per-level ground truth before any faults.
    let clean: Vec<_> = (0..LEVELS)
        .map(|l| {
            canopus
                .open("rel.bp")
                .expect("open")
                .with_level_cache(0)
                .read_level(ds.var, l)
                .expect("clean read")
        })
        .collect();
    let engines = both_engines(&canopus);
    // The delta tier goes down for good: no retry budget cures this.
    canopus
        .hierarchy()
        .set_fault_plan(
            1,
            FaultPlan {
                seed: 5,
                down: Some((0, u64::MAX)),
                ..FaultPlan::none()
            },
        )
        .expect("tier 1 exists");

    for reader in &engines {
        for target in 0..LEVELS {
            let out = reader
                .read_level(ds.var, target)
                .expect("level-only unavailability is never an error");
            assert!(
                out.level >= target,
                "never finer than asked (got {}, asked {target})",
                out.level
            );
            assert_eq!(out.achieved_level, out.level);
            if out.level > target {
                assert!(out.degraded, "shortfall must be flagged");
            } else {
                assert!(!out.degraded);
            }
            assert!(out.level_exact, "whatever level is served is exact");
            assert_eq!(
                out.data, clean[out.level as usize].data,
                "degraded answer is byte-identical to a clean read of the \
                 achieved level"
            );
        }
    }
    assert!(
        canopus
            .metrics()
            .counter(names::READ_DEGRADED_RESTORES)
            .get()
            >= 2,
        "both engines degraded at least once"
    );
}

#[test]
fn warmed_metadata_moves_the_fault_to_the_fetch_stage_and_still_degrades() {
    // With cold metadata a down tier is caught while *planning* the walk
    // (the level-geometry read fails, truncating the plan). Warming the
    // metadata first makes planning succeed, so the fault surfaces for
    // the first time in the pipelined engine's prefetch stage — a
    // different shutdown path, which once deadlocked the decode pool's
    // done-channel drain. This pins: the walk terminates and degrades
    // exactly as in the planning-fault case.
    let (ds, canopus) = written();
    let clean: Vec<_> = (0..LEVELS)
        .map(|l| {
            canopus
                .open("rel.bp")
                .expect("open")
                .with_level_cache(0)
                .read_level(ds.var, l)
                .expect("clean read")
        })
        .collect();
    let engines = both_engines(&canopus);
    for reader in &engines {
        reader.warm_metadata(ds.var).expect("warm before arming");
    }
    canopus
        .hierarchy()
        .set_fault_plan(
            1,
            FaultPlan {
                seed: 5,
                down: Some((0, u64::MAX)),
                ..FaultPlan::none()
            },
        )
        .expect("tier 1 exists");

    for reader in &engines {
        let out = reader
            .read_level(ds.var, 0)
            .expect("fetch-stage unavailability is never an error");
        assert!(out.degraded, "the walk stopped short of L0");
        assert!(out.level > 0 && out.level < LEVELS);
        assert_eq!(out.achieved_level, out.level);
        assert!(out.level_exact);
        assert_eq!(
            out.data, clean[out.level as usize].data,
            "fetch-stage degradation serves the same exact coarser level"
        );
    }
    assert!(
        canopus
            .metrics()
            .counter(names::READ_DEGRADED_RESTORES)
            .get()
            >= 2,
        "both engines degraded"
    );
}

#[test]
fn in_flight_corruption_is_caught_by_checksums_and_cured_by_refetch() {
    let (ds, canopus) = written();
    let clean = canopus
        .open("rel.bp")
        .expect("open")
        .with_level_cache(0)
        .read_level(ds.var, 0)
        .expect("fault-free restore");
    let engines = both_engines(&canopus);
    // ~30% of gets deliver a bit-flipped payload; the stored object is
    // intact, so a retry fetches clean bytes.
    canopus.hierarchy().set_fault_plan_all(FaultPlan {
        seed: 21,
        corrupt_p: 0.3,
        ..FaultPlan::none()
    });

    for reader in &engines {
        let out = reader.read_level(ds.var, 0).expect("corruption is cured");
        assert!(!out.degraded);
        assert_eq!(
            out.data, clean.data,
            "checksum-verified refetch restores the exact bytes"
        );
    }
    let m = canopus.metrics();
    assert!(
        m.counter(names::READ_CHECKSUM_FAILURES).get() > 0,
        "corruption must actually have been detected"
    );
    assert_eq!(
        m.counter(names::READ_CHECKSUM_FAILURES).get(),
        m.counter(names::READ_FAULTS_INJECTED).get(),
        "every observed fault here was a checksum mismatch"
    );
}

#[test]
fn fault_injection_is_deterministic_across_runs() {
    // Two identical runs under the same seed observe identical fault
    // counts and produce identical bytes.
    let run = || {
        let (ds, canopus) = written();
        let reader = canopus.open("rel.bp").expect("open").with_level_cache(0);
        canopus.hierarchy().set_fault_plan_all(FaultPlan {
            seed: 33,
            get_error_p: 0.25,
            corrupt_p: 0.1,
            ..FaultPlan::none()
        });
        let out = reader.read_level(ds.var, 0).expect("restore");
        let m = canopus.metrics();
        (
            out.data,
            out.degraded,
            m.counter(names::READ_RETRIES).get(),
            m.counter(names::READ_FAULTS_INJECTED).get(),
            m.counter(names::READ_CHECKSUM_FAILURES).get(),
        )
    };
    assert_eq!(run(), run(), "seeded schedules must replay exactly");
}

#[test]
fn armed_destination_faults_never_lose_a_migrating_key() {
    // The PR 9 data-loss bugfix, end to end: with put faults armed on
    // the destination tier, repeated migration attempts may fail but
    // the object must survive — readable and byte-exact — after every
    // attempt, and must never end up duplicated across tiers.
    use bytes::Bytes;

    let h = StorageHierarchy::new(vec![
        TierSpec::new("fast", 1 << 20, 1e9, 1e9, 1e-6),
        TierSpec::new("slow", 1 << 26, 1e7, 1e7, 1e-3),
    ]);
    let keys: Vec<String> = (0..8).map(|i| format!("mig/{i}")).collect();
    let payloads: Vec<Bytes> = (0..8)
        .map(|i| Bytes::from(vec![(i * 31 + 7) as u8; 1024 + i * 100]))
        .collect();
    for (k, p) in keys.iter().zip(&payloads) {
        h.write_to_tier(1, k, p.clone()).expect("seed write");
    }
    // Every put on the fast (destination) tier faults half the time,
    // seeded — the schedule replays identically across runs.
    h.set_fault_plan(
        0,
        FaultPlan {
            seed: 77,
            put_error_p: 0.5,
            ..FaultPlan::none()
        },
    )
    .expect("tier 0 exists");

    let mut failures = 0u32;
    for round in 0..6 {
        for (i, k) in keys.iter().enumerate() {
            let target = if round % 2 == 0 { 0 } else { 1 };
            if h.migrate(k, target).is_err() {
                failures += 1;
            }
            // Invariant after every attempt, success or failure: the
            // key lives in exactly one place with its exact bytes.
            let tier = h.find(k).expect("key must never be lost");
            let on_fast = h.tier_device(0).expect("t0").contains(k);
            let on_slow = h.tier_device(1).expect("t1").contains(k);
            assert!(
                on_fast ^ on_slow,
                "{k} must live on exactly one tier (fast={on_fast}, slow={on_slow})"
            );
            let data = h.tier_device(tier).expect("tier").get(k).expect("get");
            assert_eq!(data, payloads[i], "{k} bytes survive round {round}");
        }
    }
    assert!(failures > 0, "the armed schedule must actually fire");
    // Disarm: every key can still reach the fast tier and stays exact.
    h.set_fault_plan(0, FaultPlan::none()).expect("tier 0");
    for (i, k) in keys.iter().enumerate() {
        h.migrate(k, 0).expect("clean migrate");
        assert_eq!(h.find(k).expect("found"), 0);
        let (data, _, _) = h.read(k).expect("read");
        assert_eq!(data, payloads[i]);
    }
}
