//! Property-based integration tests over the whole pipeline.

use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_mesh::generators::{jitter_interior, rectangle_mesh};
use canopus_mesh::geometry::{Aabb, Point2};
use canopus_refactor::levels::RefactorConfig;
use canopus_storage::StorageHierarchy;
use proptest::prelude::*;
use std::sync::Arc;

/// Random smooth-ish field over a random jittered grid.
fn arb_case() -> impl Strategy<Value = (usize, usize, u64, f64, f64)> {
    (4usize..12, 4usize..12, 0u64..500, 0.5f64..20.0, 0.5f64..8.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the mesh, field and level count, the full pipeline
    /// restores L0 within an accumulated codec bound.
    #[test]
    fn pipeline_accuracy_contract((nx, ny, seed, amp, freq) in arb_case(), levels in 1u32..5) {
        let bb = Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
        let mesh = jitter_interior(&rectangle_mesh(nx, ny, bb), 0.2, seed);
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| amp * ((p.x * freq).sin() + (p.y * freq * 0.7).cos()))
            .collect();
        let raw = (data.len() * 8) as u64;
        let rel = 1e-5;
        let canopus = Canopus::new(
            Arc::new(StorageHierarchy::titan_two_tier(raw, raw * 64)),
            CanopusConfig {
                refactor: RefactorConfig { num_levels: levels, ..Default::default() },
                codec: RelativeCodec::ZfpLike { rel_tolerance: rel },
                ..Default::default()
            },
        );
        canopus.write("p.bp", "v", &mesh, &data).unwrap();
        let reader = canopus.open("p.bp").unwrap();
        let out = reader.read_level("v", 0).unwrap();
        prop_assert_eq!(out.data.len(), data.len());

        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let bound = (levels as f64) * rel * (hi - lo).max(1e-9) + 1e-12;
        let max_err = out
            .data
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(max_err <= bound, "err {} > bound {}", max_err, bound);
    }

    /// Capacity is never exceeded on any tier, whatever the sizes.
    #[test]
    fn capacity_invariant((nx, ny, seed, amp, _freq) in arb_case(), shrink in 2u64..16) {
        let bb = Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
        let mesh = jitter_interior(&rectangle_mesh(nx, ny, bb), 0.2, seed);
        let data: Vec<f64> = mesh.points().iter().map(|p| amp * p.x).collect();
        let raw = (data.len() * 8) as u64;
        let hierarchy = Arc::new(StorageHierarchy::titan_two_tier(raw / shrink, raw * 64));
        let canopus = Canopus::new(Arc::clone(&hierarchy), CanopusConfig::default());
        // Write may or may not succeed depending on capacity; either way
        // no tier may be over-full and no panic may occur.
        let _ = canopus.write("c.bp", "v", &mesh, &data);
        for t in 0..hierarchy.num_tiers() {
            let dev = hierarchy.tier_device(t).unwrap();
            prop_assert!(dev.used() <= dev.capacity());
        }
    }

    /// Progressive refinement is equivalent to direct read_level at every
    /// stop point.
    #[test]
    fn progressive_equals_direct((nx, ny, seed, amp, freq) in arb_case()) {
        let bb = Aabb::from_points([Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
        let mesh = jitter_interior(&rectangle_mesh(nx, ny, bb), 0.2, seed);
        let data: Vec<f64> = mesh
            .points()
            .iter()
            .map(|p| amp * (p.x * freq).sin() * (p.y * freq).cos())
            .collect();
        let raw = (data.len() * 8) as u64;
        let canopus = Canopus::new(
            Arc::new(StorageHierarchy::titan_two_tier(raw, raw * 64)),
            CanopusConfig {
                refactor: RefactorConfig { num_levels: 3, ..Default::default() },
                codec: RelativeCodec::Raw,
                ..Default::default()
            },
        );
        canopus.write("p.bp", "v", &mesh, &data).unwrap();
        let reader = canopus.open("p.bp").unwrap();
        let mut prog = reader.progressive("v").unwrap();
        loop {
            let direct = reader.read_level("v", prog.level()).unwrap();
            prop_assert_eq!(direct.data, prog.data().to_vec());
            if prog.at_full_accuracy() {
                break;
            }
            prog.refine().unwrap();
        }
    }
}
