//! Integration tests for the in-transit transport and the
//! migration/eviction machinery working together with the full pipeline.

use bytes::Bytes;
use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig};
use canopus_adios::store::BlockWrite;
use canopus_adios::{BpStore, Transport, TransportWriter};
use canopus_data::cfd_dataset_sized;
use canopus_storage::{AccessTracker, ProductKind, StorageHierarchy, TierSpec};
use std::sync::Arc;

fn hierarchy() -> Arc<StorageHierarchy> {
    Arc::new(StorageHierarchy::new(vec![
        TierSpec::new("fast", 48 * 1024, 1e9, 1e9, 1e-6),
        TierSpec::new("mid", 512 * 1024, 1e7, 1e7, 1e-4),
        TierSpec::new("slow", 64 << 20, 1e6, 1e6, 1e-3),
    ]))
}

/// Simulate a simulation loop: stage several timesteps in transit while
/// "compute" continues, then drain and read everything back.
#[test]
fn staged_timesteps_drain_and_read_back() {
    let h = hierarchy();
    let store = BpStore::new(Arc::clone(&h));
    let writer = TransportWriter::new(store.clone(), Transport::Staged);

    for step in 0..5u8 {
        let blocks = vec![BlockWrite {
            var: "u".into(),
            kind: ProductKind::Base { level: 0 },
            data: Bytes::from(vec![step; 4096]),
            elements: 512,
            codec_id: 0,
            codec_param: 0.0,
            raw_bytes: 4096,
            min: 0.0,
            max: 1.0,
            chunks: vec![],
        }];
        let inline = writer
            .write(&format!("step{step}.bp"), 1, blocks)
            .expect("stage");
        assert!(inline.is_none(), "staged writes return immediately");
    }
    let outcomes = writer.drain();
    assert_eq!(outcomes.len(), 5);
    for o in &outcomes {
        assert!(o.result.is_ok(), "{}: {:?}", o.file, o.result);
    }
    for step in 0..5u8 {
        let f = store.open(&format!("step{step}.bp")).expect("open");
        let (bytes, _, _) = f.read_base("u").expect("read");
        assert!(bytes.iter().all(|&b| b == step));
    }
}

/// When the fast tier fills over a campaign, evicting cold bases makes
/// room for hot ones — and everything stays readable afterward.
#[test]
fn eviction_keeps_campaign_readable_under_tier_pressure() {
    let h = hierarchy();
    let ds = cfd_dataset_sized(16, 12, 9);
    let canopus = Canopus::new(
        Arc::clone(&h),
        CanopusConfig {
            codec: RelativeCodec::Raw,
            ..Default::default()
        },
    );

    // Write timesteps until the fast tier is under real pressure.
    let mut written = Vec::new();
    for step in 0..6 {
        let file = format!("t{step}.bp");
        canopus
            .write(&file, "p", &ds.mesh, &ds.data)
            .expect("write never fails outright — placement bypasses");
        written.push(file);
    }

    // The fast tier holds some early bases; demote everything cold.
    let tracker = AccessTracker::new();
    let fast = h.tier_device(0).expect("tier 0");
    let before_keys = fast.keys();
    if !before_keys.is_empty() {
        // Touch the newest object so it survives, evict for a big request.
        tracker.touch(before_keys.last().expect("non-empty"));
        let want = fast.capacity(); // force maximal demotion
        let _ = h.make_room(0, want.min(fast.capacity()), &tracker);
    }

    // Every timestep still restores exactly.
    for file in &written {
        let reader = canopus.open(file).expect("open");
        let out = reader.read_level("p", 0).expect("read");
        let max_err = out
            .data
            .iter()
            .zip(&ds.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "{file}: err {max_err}");
    }
}

/// Promotion pulls a hot base up; subsequent reads get fast-tier latency.
#[test]
fn promotion_accelerates_hot_reads() {
    let h = hierarchy();
    let ds = cfd_dataset_sized(16, 12, 9);
    let canopus = Canopus::new(
        Arc::clone(&h),
        CanopusConfig {
            codec: RelativeCodec::Raw,
            ..Default::default()
        },
    );
    canopus
        .write("hot.bp", "p", &ds.mesh, &ds.data)
        .expect("write");

    // Force the base down to the slow tier first.
    let base_key = "hot.bp/p/L2";
    let from = h.find(base_key).expect("placed");
    if from < 2 {
        h.migrate(base_key, 2).expect("demote");
    }
    let (_, tier_before, t_slow) = h.read(base_key).expect("read slow");
    assert_eq!(tier_before, 2);

    // Promote and re-read.
    let tracker = AccessTracker::new();
    tracker.touch(base_key);
    let new_tier = h.promote(base_key, &tracker, true).expect("promote");
    assert!(new_tier < 2, "promotion should move the base up");
    let (_, tier_after, t_fast) = h.read(base_key).expect("read fast");
    assert_eq!(tier_after, new_tier);
    assert!(
        t_fast.seconds() < t_slow.seconds() / 5.0,
        "fast read {} should be far under slow read {}",
        t_fast.seconds(),
        t_slow.seconds()
    );

    // And the data still decodes through the full reader.
    let reader = canopus.open("hot.bp").expect("open");
    assert_eq!(
        reader.read_level("p", 0).expect("read").data.len(),
        ds.data.len()
    );
}

/// Direct vs staged transports produce byte-identical stores.
#[test]
fn transports_are_equivalent_in_outcome() {
    let make_blocks = || {
        vec![BlockWrite {
            var: "v".into(),
            kind: ProductKind::Base { level: 0 },
            data: Bytes::from(
                (0u16..1000)
                    .flat_map(|x| x.to_le_bytes())
                    .collect::<Vec<u8>>(),
            ),
            elements: 250,
            codec_id: 0,
            codec_param: 0.0,
            raw_bytes: 2000,
            min: 0.0,
            max: 1.0,
            chunks: vec![],
        }]
    };
    let read_back = |store: &BpStore| -> Vec<u8> {
        let f = store.open("x.bp").expect("open");
        let (bytes, _, _) = f.read_base("v").expect("read");
        bytes.to_vec()
    };

    let direct_store = BpStore::new(hierarchy());
    TransportWriter::new(direct_store.clone(), Transport::Direct)
        .write("x.bp", 1, make_blocks())
        .expect("direct");

    let staged_store = BpStore::new(hierarchy());
    let w = TransportWriter::new(staged_store.clone(), Transport::Staged);
    w.write("x.bp", 1, make_blocks()).expect("staged");
    let outcomes = w.drain();
    assert!(outcomes.iter().all(|o| o.result.is_ok()));

    assert_eq!(read_back(&direct_store), read_back(&staged_store));
}
