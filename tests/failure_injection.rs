//! Failure-injection tests: corrupted or missing stored products must
//! surface as errors, never as panics or silently wrong data.

use bytes::Bytes;
use canopus::config::RelativeCodec;
use canopus::{Canopus, CanopusConfig, CanopusError};
use canopus_data::cfd_dataset_sized;
use canopus_storage::StorageHierarchy;
use std::sync::Arc;

fn setup(codec: RelativeCodec) -> (canopus_data::Dataset, Canopus) {
    let ds = cfd_dataset_sized(20, 16, 44);
    let raw = (ds.data.len() * 8) as u64;
    let canopus = Canopus::new(
        Arc::new(StorageHierarchy::titan_two_tier(raw / 4, raw * 64)),
        CanopusConfig {
            codec,
            ..Default::default()
        },
    );
    canopus
        .write("fi.bp", ds.var, &ds.mesh, &ds.data)
        .expect("write");
    (ds, canopus)
}

/// Replace a stored object's payload with `bytes`.
fn replace_object(canopus: &Canopus, key: &str, bytes: Vec<u8>) {
    let h = canopus.hierarchy();
    let tier = h.find(key).expect("object exists");
    h.tier_device(tier)
        .expect("tier")
        .remove(key)
        .expect("remove");
    h.write_to_tier(tier, key, Bytes::from(bytes))
        .expect("rewrite");
}

fn corrupt_object(canopus: &Canopus, key: &str) {
    let (data, _, _) = canopus.hierarchy().read(key).expect("read");
    let mut bytes = data.to_vec();
    // Flip bits throughout the stream, header included.
    for (i, b) in bytes.iter_mut().enumerate() {
        if i % 7 == 0 {
            *b ^= 0xA5;
        }
    }
    replace_object(canopus, key, bytes);
}

#[test]
fn corrupted_base_fails_cleanly() {
    let (ds, canopus) = setup(RelativeCodec::ZfpLike {
        rel_tolerance: 1e-5,
    });
    corrupt_object(&canopus, "fi.bp/pressure/L2");
    let reader = canopus.open("fi.bp").expect("open");
    match reader.read_base(ds.var) {
        // The manifest checksum is the first line of defense: persistent
        // in-place corruption surfaces as a mismatch once the retry
        // budget confirms it isn't transient.
        Err(e) if e.is_checksum_mismatch() => {}
        Err(CanopusError::Codec(_)) | Err(CanopusError::Invalid(_)) => {}
        Err(other) => panic!("unexpected error class: {other}"),
        Ok(out) => {
            // A corrupted stream that still parses must at least decode to
            // the right element count (the codec validated structure).
            assert_eq!(out.data.len(), reader.read_base(ds.var).unwrap().data.len());
        }
    }
}

#[test]
fn corrupted_delta_fails_cleanly() {
    let (ds, canopus) = setup(RelativeCodec::SzLike {
        rel_error_bound: 1e-5,
    });
    corrupt_object(&canopus, "fi.bp/pressure/d1-2");
    let reader = canopus.open("fi.bp").expect("open");
    let base = reader.read_base(ds.var).expect("base is untouched");
    assert!(
        reader.refine_once(ds.var, &base).is_err(),
        "corrupted delta must be detected"
    );
}

#[test]
fn corrupted_mesh_metadata_fails_cleanly() {
    let (ds, canopus) = setup(RelativeCodec::Raw);
    corrupt_object(&canopus, "fi.bp/pressure/m2");
    let reader = canopus.open("fi.bp").expect("open");
    match reader.read_base(ds.var) {
        Err(e) if e.is_checksum_mismatch() => {}
        Err(CanopusError::MeshIo(_)) | Err(CanopusError::Invalid(_)) => {}
        Err(other) => panic!("unexpected error class: {other}"),
        Ok(_) => panic!("corrupted mesh metadata must not parse"),
    }
}

#[test]
fn corrupted_file_metadata_fails_cleanly() {
    let (_, canopus) = setup(RelativeCodec::Raw);
    corrupt_object(&canopus, "fi.bp/.bpmeta");
    assert!(canopus.open("fi.bp").is_err());
}

#[test]
fn missing_delta_fails_cleanly() {
    let (ds, canopus) = setup(RelativeCodec::Raw);
    canopus
        .hierarchy()
        .remove("fi.bp/pressure/d0-1")
        .expect("remove delta");
    let reader = canopus.open("fi.bp").expect("open");
    let base = reader.read_base(ds.var).expect("base");
    let (mid, _) = reader.refine_once(ds.var, &base).expect("first refine ok");
    assert!(
        reader.refine_once(ds.var, &mid).is_err(),
        "missing delta must be reported"
    );
}

#[test]
fn truncated_payload_fails_cleanly() {
    let (ds, canopus) = setup(RelativeCodec::ZfpLike {
        rel_tolerance: 1e-5,
    });
    let (data, _, _) = canopus.hierarchy().read("fi.bp/pressure/L2").expect("read");
    replace_object(
        &canopus,
        "fi.bp/pressure/L2",
        data[..data.len() / 3].to_vec(),
    );
    let reader = canopus.open("fi.bp").expect("open");
    assert!(reader.read_base(ds.var).is_err());
}

#[test]
fn wrong_codec_id_in_metadata_is_rejected() {
    // Write with Raw, then corrupt only the metadata's codec id by
    // rewriting metadata bytes — the simplest way is corrupting a raw
    // stream read through a lossy decoder: swap the base payload for a
    // stream of the wrong codec.
    let (ds, canopus) = setup(RelativeCodec::Raw);
    // A zfp-like stream where the metadata says "raw" (codec id 0).
    let zfp = canopus_compress::ZfpLike::with_tolerance(1e-3);
    use canopus_compress::Codec as _;
    let alien = zfp.compress(&[1.0; 16]).expect("compress");
    replace_object(&canopus, "fi.bp/pressure/L2", alien);
    let reader = canopus.open("fi.bp").expect("open");
    // Raw decoder expects n*8 bytes exactly; the alien stream fails the
    // length check.
    assert!(reader.read_base(ds.var).is_err());
}
